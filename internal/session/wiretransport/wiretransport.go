// Package wiretransport adapts the UDP sender/collector pair to the
// session engine's Transport interface, measuring the round trip to an
// echoing far end (wire.Reflector or any dumb echo service): probes are
// paced onto their slot deadlines by a goroutine while the collector logs
// the reflected stream on the same socket, and AdvanceTo sleeps on the
// wall clock.
//
// The transport is failure-aware. Loss is BADABING's measurement signal,
// so infrastructure failure must be detected out-of-band or it corrupts
// the estimates as a fake loss episode:
//
//   - Launch runs a liveness handshake (ping/pong with retry, exponential
//     backoff and jitter) before the first probe, so a refused or dead far
//     end fails fast instead of "measuring" a ghost path.
//   - A watchdog in AdvanceTo watches for an unbroken trailing run of
//     unanswered probes — the signature of a dead far end, which scattered
//     path loss essentially never produces — and confirms with a liveness
//     re-check routed through the collector before declaring the path dead
//     (session.ErrPathDead).
//   - Once the path is declared dead, Observations truncates at the death
//     point: the outage is unmeasured, not loss, and is excluded from the
//     partial estimates the session engine flags as aborted.
package wiretransport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/session"
	"badabing/internal/wire"
)

// WatchdogConfig tunes the mid-run dead-path detector.
type WatchdogConfig struct {
	// Disable turns the watchdog off (the liveness handshake at Launch
	// is governed separately by Options.SkipHandshake).
	Disable bool
	// ConsecutiveProbes is how many trailing probes must be unanswered
	// in an unbroken run before the far end is suspected dead. Default
	// 20 — at any plausible per-probe loss rate the chance of that many
	// consecutive fully-lost probes on a merely lossy path is nil.
	ConsecutiveProbes int
	// Grace is how long after a probe's slot deadline its reflection may
	// still legitimately be in flight; probes younger than this are not
	// counted as unanswered. Default 500ms.
	Grace time.Duration
	// Recheck parameterizes the confirming liveness probe (attempts,
	// per-attempt timeout, backoff). The zero value takes the handshake
	// defaults with 3 attempts.
	Recheck wire.LivenessConfig
}

func (w *WatchdogConfig) applyDefaults() {
	if w.ConsecutiveProbes == 0 {
		w.ConsecutiveProbes = 20
	}
	if w.Grace == 0 {
		w.Grace = 500 * time.Millisecond
	}
	if w.Recheck.Attempts == 0 {
		w.Recheck.Attempts = 3
	}
}

// Options bundle the failure-handling knobs of a transport.
type Options struct {
	// Liveness tunes the pre-session handshake's retry schedule.
	Liveness wire.LivenessConfig
	// SkipHandshake starts probing without proving the far end alive
	// (for paths whose far end predates the liveness protocol).
	SkipHandshake bool
	// Watchdog tunes the mid-run dead-path detector.
	Watchdog WatchdogConfig
}

// Transport drives a BADABING session over a real UDP path. Construct it
// with Dial or DialOptions, hand it to session.Run, then Close it.
type Transport struct {
	cfg  wire.SenderConfig
	opts Options
	conn *net.UDPConn
	col  *wire.Collector

	start time.Time
	slots []int64

	writeFails atomic.Int64
	pingNonce  atomic.Uint64

	mu       sync.Mutex
	sent     int // slots[:sent] have been emitted
	sendErr  error
	stats    wire.SendStats
	launched bool
	deadFrom time.Duration // session time the path died; -1 while alive
	done     chan struct{}
}

// Dial connects a UDP socket to target and prepares a round-trip
// measurement transport with default failure handling. cfg must carry the
// session's exact schedule parameters (P, N, Slot, Improved, Seed — in
// particular a non-zero Seed equal to the session Config's), since they
// are stamped into the wire header and the collector's own batch reports
// re-derive the schedule from them.
func Dial(target string, cfg wire.SenderConfig) (*Transport, error) {
	return DialOptions(target, cfg, Options{})
}

// DialOptions is Dial with explicit liveness and watchdog tuning.
func DialOptions(target string, cfg wire.SenderConfig, opts Options) (*Transport, error) {
	if cfg.Seed == 0 {
		return nil, fmt.Errorf("wiretransport: seed must be pinned to the session's schedule seed")
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	opts.Watchdog.applyDefaults()
	raddr, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, fmt.Errorf("wiretransport: resolve %s: %w", target, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("wiretransport: dial %s: %w", target, err)
	}
	return &Transport{
		cfg:      cfg,
		opts:     opts,
		conn:     conn,
		col:      wire.NewCollector(conn),
		deadFrom: -1,
		done:     make(chan struct{}),
	}, nil
}

// countingConn counts failed probe writes as they happen, so the daemon's
// /metrics see write failures live rather than at session end.
type countingConn struct {
	*net.UDPConn
	fails *atomic.Int64
	bw    wire.BatchWriter
}

func (c countingConn) Write(b []byte) (int, error) {
	n, err := c.UDPConn.Write(b)
	if err != nil {
		c.fails.Add(1)
	}
	return n, err
}

// WriteBatch exposes the socket's sendmmsg fast path to the sender.
// Batch shortfalls need no counting here: the sender retries the
// remainder through Write, which counts per packet.
func (c countingConn) WriteBatch(ms []wire.Message) (int, error) {
	if c.bw == nil {
		return 0, wire.ErrBatchUnsupported
	}
	return c.bw.WriteBatch(ms)
}

// Launch proves the far end alive (unless opted out), then starts the
// collector loop and the pacing goroutine. The launch instant becomes
// session time zero. A failed handshake returns an error wrapping both
// wire.ErrNotAlive and session.ErrPathDead — the session must not start.
func (t *Transport) Launch(ctx context.Context, slots []int64) error {
	t.mu.Lock()
	if t.launched {
		t.mu.Unlock()
		return fmt.Errorf("wiretransport: already launched")
	}
	t.launched = true
	t.mu.Unlock()

	if !t.opts.SkipHandshake {
		if _, err := wire.Handshake(ctx, t.conn, t.opts.Liveness); err != nil {
			if errors.Is(err, wire.ErrNotAlive) {
				err = fmt.Errorf("%w: %w", session.ErrPathDead, err)
			}
			return fmt.Errorf("wiretransport: liveness handshake with %s: %w", t.conn.RemoteAddr(), err)
		}
	}

	t.mu.Lock()
	t.slots = slots
	t.start = time.Now()
	t.mu.Unlock()
	go t.col.Run()
	go func() {
		defer close(t.done)
		sendConn := countingConn{UDPConn: t.conn, fails: &t.writeFails}
		if !t.cfg.DisableBatch {
			sendConn.bw = wire.NewBatchWriter(t.conn)
		}
		st, err := wire.SendSlots(ctx, sendConn, t.cfg, slots, t.start, func(i int, slot int64) {
			t.mu.Lock()
			t.sent = i + 1
			t.mu.Unlock()
		})
		t.mu.Lock()
		t.stats = st
		t.sendErr = err
		t.mu.Unlock()
	}()
	return nil
}

// Now returns the wall-clock time elapsed since Launch.
func (t *Transport) Now() time.Duration {
	t.mu.Lock()
	start := t.start
	t.mu.Unlock()
	if start.IsZero() {
		return 0
	}
	return time.Since(start)
}

// AdvanceTo sleeps until session time tt, then surfaces any error the
// pacing goroutine hit (a dead sender would otherwise stall the session
// silently until its horizon) and runs the dead-path watchdog.
func (t *Transport) AdvanceTo(ctx context.Context, tt time.Duration) error {
	t.mu.Lock()
	start := t.start
	t.mu.Unlock()
	if wait := time.Until(start.Add(tt)); wait > 0 {
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
	t.mu.Lock()
	err := t.sendErr
	stats := t.stats
	t.mu.Unlock()
	if err != nil && err != context.Canceled {
		if errors.Is(err, session.ErrPathDead) && stats.DeadSlot >= 0 {
			// The sender died on an unbroken write-failure run: the
			// path was last proven alive before that run began.
			t.markDead(time.Duration(stats.DeadSlot) * t.cfg.Slot)
		}
		return fmt.Errorf("wiretransport: sender: %w", err)
	}
	if !t.opts.Watchdog.Disable {
		if err := t.watchdog(ctx); err != nil {
			return err
		}
	}
	return nil
}

// markDead records the session time the path died (first call wins).
func (t *Transport) markDead(at time.Duration) {
	t.mu.Lock()
	if t.deadFrom < 0 {
		t.deadFrom = at
	}
	t.mu.Unlock()
}

// DeadFrom returns the session time the path was declared dead, or -1
// while it is considered alive.
func (t *Transport) DeadFrom() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deadFrom
}

// watchdog distinguishes "lossy path" from "far end dead": scattered loss
// leaves answered probes interleaved with lost ones, while a dead far end
// produces an unbroken trailing run of unanswered probes. When such a run
// reaches the configured length, a liveness re-check (pings routed
// through the collector) gets the final say: answered means merely an
// extreme loss episode — keep measuring, the estimator is built for
// exactly that — unanswered means infrastructure failure.
func (t *Transport) watchdog(ctx context.Context) error {
	t.mu.Lock()
	start, sent, slots, dead := t.start, t.sent, t.slots, t.deadFrom
	t.mu.Unlock()
	if dead >= 0 || start.IsZero() || sent == 0 {
		return nil
	}
	wd := t.opts.Watchdog

	// Only probes whose reflection has had Grace to come home count.
	dueBy := time.Since(start) - wd.Grace
	emitted := slots[:sent]
	received := t.col.ReceivedSlots(t.cfg.ExpID)
	run := 0
	var runStart int64 = -1
	for i := len(emitted) - 1; i >= 0; i-- {
		slot := emitted[i]
		if time.Duration(slot)*t.cfg.Slot > dueBy {
			continue
		}
		if received[slot] > 0 {
			break
		}
		run++
		runStart = slot
	}
	if run < wd.ConsecutiveProbes {
		return nil
	}

	if t.recheckAlive(ctx) {
		return nil
	}
	diedAt := time.Duration(runStart) * t.cfg.Slot
	t.markDead(diedAt)
	return fmt.Errorf("wiretransport: watchdog: %d consecutive probes unanswered since slot %d and liveness re-check failed: %w",
		run, runStart, session.ErrPathDead)
}

// recheckAlive sends liveness pings and watches the collector for the
// pong (the collector owns the socket's read side mid-run). Any pong
// arriving after the first ping counts.
func (t *Transport) recheckAlive(ctx context.Context) bool {
	re := t.opts.Watchdog.Recheck
	re.Seed = t.cfg.Seed + 1 // deterministic jitter, decoupled from the schedule
	re = re.WithDefaults()
	sched := re.BackoffSchedule()
	started := time.Now()
	for attempt := 0; attempt < len(sched); attempt++ {
		nonce := t.cfg.ExpID<<16 | t.pingNonce.Add(1)
		if err := wire.Ping(t.conn, nonce); err == nil {
			// Poll for the pong for the attempt's timeout.
			deadline := time.Now().Add(re.Timeout)
			for time.Now().Before(deadline) {
				if _, at, ok := t.col.LastPong(); ok && at.After(started) {
					return true
				}
				select {
				case <-ctx.Done():
					return false
				case <-time.After(10 * time.Millisecond):
				}
			}
		}
		if attempt < len(sched)-1 {
			select {
			case <-ctx.Done():
				return false
			case <-time.After(sched[attempt]):
			}
		}
	}
	_, at, ok := t.col.LastPong()
	return ok && at.After(started)
}

// Observations assembles per-probe outcomes for every probe emitted so
// far from the collector's log of the reflected stream, including the
// collector's pacing-lag invalidation and clock-skew correction. Once the
// path has been declared dead, observations are truncated at the death
// point: those probes are unmeasured — infrastructure failure — and must
// not enter the estimates as loss.
func (t *Transport) Observations() ([]badabing.ProbeObs, map[int64]bool) {
	t.mu.Lock()
	emitted := t.slots[:t.sent]
	dead := t.deadFrom
	t.mu.Unlock()
	obs, invalid, _ := t.col.AssembleObs(t.cfg.ExpID, emitted, t.cfg.PacketsPerProbe, t.cfg.Slot)
	if dead >= 0 {
		for i, o := range obs {
			if o.T >= dead {
				obs = obs[:i]
				break
			}
		}
	}
	return obs, invalid
}

// Close shuts the socket, terminating the collector loop and (if still
// running) the pacer, and waits for the pacer to exit.
func (t *Transport) Close() error {
	err := t.col.Close()
	t.mu.Lock()
	launched := t.launched
	start := t.start
	t.mu.Unlock()
	if launched && !start.IsZero() {
		<-t.done
	}
	return err
}

// Collector exposes the underlying collector so callers can run batch
// reports or snapshots against the same observation log.
func (t *Transport) Collector() *wire.Collector { return t.col }

// ExpID returns the session id stamped on the probes.
func (t *Transport) ExpID() uint64 { return t.cfg.ExpID }

// LocalAddr returns the probing socket's local address.
func (t *Transport) LocalAddr() net.Addr { return t.conn.LocalAddr() }

// WriteFailures returns how many probe writes the socket has rejected so
// far. Live — the daemon surfaces it in /metrics while sessions run.
func (t *Transport) WriteFailures() int64 { return t.writeFails.Load() }

// SendStats returns the pacer's summary; valid once the session is done.
func (t *Transport) SendStats() wire.SendStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
