package wiretransport_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"badabing/internal/session"
	"badabing/internal/session/wiretransport"
	"badabing/internal/wire"
)

func startReflector(t *testing.T) (*wire.Reflector, string) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	refl := wire.NewReflector(pc)
	go refl.Run()
	t.Cleanup(func() { refl.Close() })
	return refl, pc.LocalAddr().String()
}

// TestSessionCancelMidRun cancels a live wire session partway through:
// session.Run must return promptly with context.Canceled, Close must not
// hang, the partial SendStats must be sane, and no goroutines may leak.
func TestSessionCancelMidRun(t *testing.T) {
	_, addr := startReflector(t)

	before := runtime.NumGoroutine()

	const (
		p     = 0.3
		slots = 2000 // 20s horizon — cancellation must cut it to ~300ms
		slotW = 10 * time.Millisecond
	)
	tr, err := wiretransport.DialOptions(addr, wire.SenderConfig{
		ExpID: 21, P: p, N: slots, Slot: slotW, Improved: true, Seed: 21,
	}, wiretransport.Options{
		Liveness: wire.LivenessConfig{Seed: 21},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	res, err := session.Run(ctx, tr, session.Config{
		P: p, Slots: slots, Slot: slotW, Improved: true, Seed: 21,
		StepSlots: 20, Settle: 200 * time.Millisecond,
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result: %+v", res)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("cancellation took %v to unwind", took)
	}

	closed := make(chan error, 1)
	go func() { closed <- tr.Close() }()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung after cancellation")
	}

	st := tr.SendStats()
	if st.Packets == 0 {
		t.Fatal("no packets sent before cancellation")
	}
	if st.DeadSlot != -1 {
		t.Fatalf("cancellation flagged as dead path: %+v", st)
	}
	if tr.DeadFrom() >= 0 {
		t.Fatalf("cancellation marked the path dead at %v", tr.DeadFrom())
	}

	// The pacer, collector and watchdog helpers must all unwind.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancel: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHandshakeAgainstReflector: the pre-session handshake succeeds
// quickly against a live reflector and stamps nothing into the probe
// stream (the collector sees no spurious probe slots from pings).
func TestHandshakeAgainstReflector(t *testing.T) {
	refl, addr := startReflector(t)

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rtt, err := wire.Handshake(context.Background(), conn, wire.LivenessConfig{Seed: 31})
	if err != nil {
		t.Fatalf("handshake against live reflector: %v", err)
	}
	if rtt <= 0 {
		t.Fatalf("non-positive RTT %v", rtt)
	}
	// Liveness traffic must not pollute the probe counters.
	if got := refl.Packets(); got != 0 {
		t.Fatalf("pings counted as %d probe packets", got)
	}
	if refl.Pings() == 0 {
		t.Fatal("reflector answered no pings")
	}
}
