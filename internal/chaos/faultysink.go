package chaos

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"badabing/internal/store"
)

// ErrDiskFull is the injected failure FaultySink returns while a fault
// window is open — the canonical "archive disk filled up" condition the
// store circuit breaker exists for.
var ErrDiskFull = errors.New("chaos: injected disk full")

// eventSink is the registry's durable-event interface, declared
// structurally so the chaos package does not import fleet (fleet's own
// tests import chaos). *store.Store, *store.Mem and fleet.BreakerSink
// all satisfy it.
type eventSink interface {
	SessionCreated(id string, at time.Time, cfgJSON []byte, seed int64) error
	SessionState(id string, at time.Time, state string, terminal bool, errMsg string, retries int, seed int64) error
	SessionPoint(id string, p store.Point) error
	RegistryTotals(t store.Totals) error
}

// FaultySink is a failing-disk injector for the measurement archive: it
// wraps a sink (typically *store.Store) and, while a fault window is
// open, fails every append with the injected error instead of
// forwarding — the event never reaches the WAL, exactly like a write
// against a full or dying disk. It satisfies fleet.Sink, so a
// BreakerSink can wrap it to exercise trip/spill/replay, and it
// forwards Close to the inner sink.
type FaultySink struct {
	inner eventSink

	mu  sync.Mutex
	err error // non-nil while the fault window is open

	injected  atomic.Int64
	forwarded atomic.Int64
}

// NewFaultySink wraps inner with writes initially healthy.
func NewFaultySink(inner eventSink) *FaultySink {
	return &FaultySink{inner: inner}
}

// FailWrites opens a fault window: every append fails with err
// (ErrDiskFull when nil) until RecoverWrites.
func (f *FaultySink) FailWrites(err error) {
	if err == nil {
		err = ErrDiskFull
	}
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// RecoverWrites closes the fault window; appends forward again.
func (f *FaultySink) RecoverWrites() {
	f.mu.Lock()
	f.err = nil
	f.mu.Unlock()
}

// Failing reports whether a fault window is open.
func (f *FaultySink) Failing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err != nil
}

// Injected counts appends failed by the injector.
func (f *FaultySink) Injected() int64 { return f.injected.Load() }

// Forwarded counts appends passed through to the inner sink.
func (f *FaultySink) Forwarded() int64 { return f.forwarded.Load() }

// fail returns the injected error while the window is open.
func (f *FaultySink) fail() error {
	f.mu.Lock()
	err := f.err
	f.mu.Unlock()
	if err != nil {
		f.injected.Add(1)
	}
	return err
}

// SessionCreated implements the sink interface.
func (f *FaultySink) SessionCreated(id string, at time.Time, cfgJSON []byte, seed int64) error {
	if err := f.fail(); err != nil {
		return err
	}
	f.forwarded.Add(1)
	return f.inner.SessionCreated(id, at, cfgJSON, seed)
}

// SessionState implements the sink interface.
func (f *FaultySink) SessionState(id string, at time.Time, state string, terminal bool, errMsg string, retries int, seed int64) error {
	if err := f.fail(); err != nil {
		return err
	}
	f.forwarded.Add(1)
	return f.inner.SessionState(id, at, state, terminal, errMsg, retries, seed)
}

// SessionPoint implements the sink interface.
func (f *FaultySink) SessionPoint(id string, p store.Point) error {
	if err := f.fail(); err != nil {
		return err
	}
	f.forwarded.Add(1)
	return f.inner.SessionPoint(id, p)
}

// RegistryTotals implements the sink interface.
func (f *FaultySink) RegistryTotals(t store.Totals) error {
	if err := f.fail(); err != nil {
		return err
	}
	f.forwarded.Add(1)
	return f.inner.RegistryTotals(t)
}

// Unwrap exposes the inner sink so query interfaces (history, stats)
// resolve through the injector.
func (f *FaultySink) Unwrap() any { return f.inner }

// Close closes the inner sink if it is closable. Close is never
// injected: a full disk does not break shutdown.
func (f *FaultySink) Close() error {
	if c, ok := f.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
