package chaos_test

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"badabing/internal/chaos"
	"badabing/internal/fleet"
	"badabing/internal/health"
	"badabing/internal/obs"
	"badabing/internal/store"
)

// tlogWriter forwards each structured log line to t.Logf so soak
// transitions land in the test output.
type tlogWriter struct{ t *testing.T }

func (w tlogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// TestSoakSelfHealing is the supervised soak harness: N wire sessions
// measure real loopback paths while the harness injects the failures
// the self-healing layer exists for — disk-full windows on the archive
// (FaultySink) and reflector kill/restart cycles (FlakyReflector) —
// with the full production wiring: store → fault injector → circuit
// breaker → registry, plus health monitor and resource watchdog.
//
// Invariants checked:
//   - every session still reaches a terminal state, none lost;
//   - health walks ok → degraded → ok around each disk outage;
//   - every spilled event is replayed, none dropped, and the reopened
//     archive holds exactly what the live store held;
//   - no goroutine or file-descriptor leak once everything shuts down.
//
// Sized for -short (one fault cycle, 2 sessions); `make soak` runs the
// full matrix.
func TestSoakSelfHealing(t *testing.T) {
	sessions, faultCycles := 5, 3
	var slots int64 = 400
	if testing.Short() {
		sessions, faultCycles, slots = 2, 1, 200
	}

	baseGoroutines := runtime.NumGoroutine()
	baseFDs := health.CountFDs()

	dir := t.TempDir()
	st, _, err := store.Open(store.Options{
		Dir:           dir,
		Fsync:         store.FsyncInterval,
		FsyncInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	faulty := chaos.NewFaultySink(st)
	log := obs.NewLogger(tlogWriter{t}, obs.LoggerConfig{})
	mon := health.NewMonitor(log)
	breaker := fleet.NewBreakerSink(faulty, fleet.BreakerConfig{
		Threshold:     2,
		ProbeInterval: 25 * time.Millisecond,
		Health:        mon,
		Log:           log,
	})
	wd := health.NewWatchdog(mon, health.Budgets{
		MaxGoroutines: 10_000,
		MaxHeapBytes:  8 << 30,
	}, 50*time.Millisecond)
	wd.Start()
	defer wd.Stop()

	reg := fleet.NewRegistry(fleet.Config{MaxConcurrent: sessions, Store: breaker})
	closed := false
	defer func() {
		if !closed {
			reg.Close()
		}
	}()

	waitHealth := func(want health.State, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for mon.State() != want {
			if time.Now().After(deadline) {
				t.Fatalf("health never reached %v (%s); now %v: %+v", want, what, mon.State(), mon.Snapshot())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Launch the fleet: one reflector per session so kills are targeted.
	reflectors := make([]*chaos.FlakyReflector, sessions)
	ids := make([]string, sessions)
	for i := range reflectors {
		fr := chaos.NewFlakyReflector(chaos.Fault{}, chaos.Fault{}, int64(300+i))
		if err := fr.Start(); err != nil {
			t.Fatal(err)
		}
		defer fr.Kill()
		reflectors[i] = fr
		s, err := reg.Create(fleet.SessionConfig{
			Scenario:           "wire",
			Target:             fr.Addr().String(),
			P:                  0.3,
			Slots:              slots,
			SlotMicros:         10_000,
			StepSlots:          20,
			Seed:               int64(300 + i),
			MaxRetries:         8,
			RetryBackoffMillis: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = s.ID
	}
	waitHealth(health.Ok, "startup")

	// The fault schedule: each cycle opens a disk-full window on the
	// archive and bounces one reflector under live traffic, then heals
	// both and requires the daemon to walk back to ok.
	for c := 0; c < faultCycles; c++ {
		time.Sleep(200 * time.Millisecond) // let healthy traffic flow
		fr := reflectors[c%len(reflectors)]
		fr.Kill()
		faulty.FailWrites(nil)
		// The next publish spills and the probe loop trips the breaker.
		waitHealth(health.Degraded, "disk outage")
		time.Sleep(200 * time.Millisecond) // publish into the spill
		faulty.RecoverWrites()
		if err := fr.Start(); err != nil {
			t.Fatalf("reflector restart (cycle %d): %v", c, err)
		}
		waitHealth(health.Ok, "recovery")
	}

	// Every session must reach a terminal state despite the abuse.
	deadline := time.Now().Add(90 * time.Second)
	for _, id := range ids {
		for {
			s, err := reg.Get(id)
			if err != nil {
				t.Fatalf("session %s vanished: %v", id, err)
			}
			if s.View().State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %s stuck in %v", id, s.View().State)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// Drain the last spilled events (terminal states, final totals can
	// land right around RecoverWrites), then audit the breaker.
	drainDeadline := time.Now().Add(10 * time.Second)
	for {
		bs := breaker.Stats()
		if bs.State == "closed" && bs.SpillDepth == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatalf("breaker never drained: %+v", bs)
		}
		time.Sleep(25 * time.Millisecond)
	}
	bs := breaker.Stats()
	if bs.Spilled == 0 {
		t.Error("fault windows spilled nothing; the soak exercised no outage")
	}
	if bs.Spilled != bs.Replayed {
		t.Errorf("spilled %d != replayed %d", bs.Spilled, bs.Replayed)
	}
	if bs.Dropped != 0 {
		t.Errorf("dropped %d spilled events; history lost", bs.Dropped)
	}
	if mon.State() != health.Ok {
		t.Errorf("final health %v, want ok: %+v", mon.State(), mon.Snapshot())
	}
	if mon.Transitions() < int64(2*faultCycles) {
		t.Errorf("health transitions = %d, want >= %d (ok→degraded→ok per cycle)",
			mon.Transitions(), 2*faultCycles)
	}

	livePoints := st.Stats().Points
	liveSessions := st.Stats().Sessions
	if livePoints == 0 || liveSessions != sessions {
		t.Errorf("live store: %d points, %d sessions; want >0 points, %d sessions",
			livePoints, liveSessions, sessions)
	}

	// Shut everything down; the registry closes breaker → injector →
	// store.
	reg.Close()
	closed = true
	wd.Stop()
	for _, fr := range reflectors {
		fr.Kill()
	}

	// The reopened archive must hold exactly what the live store held —
	// the spilled-and-replayed events are durable, not just in memory.
	st2, info, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen archive: %v", err)
	}
	reopenedPoints := 0
	for _, s := range info.Sessions {
		reopenedPoints += s.Points
		if !s.Terminal {
			t.Errorf("reopened session %s not terminal (state %s)", s.ID, s.State)
		}
	}
	if len(info.Sessions) != sessions || reopenedPoints != livePoints {
		t.Errorf("reopened archive: %d sessions / %d points, want %d / %d",
			len(info.Sessions), reopenedPoints, sessions, livePoints)
	}
	st2.Close()

	// Leak check: everything joined, every socket and segment closed.
	leakDeadline := time.Now().Add(15 * time.Second)
	for {
		g, fds := runtime.NumGoroutine(), health.CountFDs()
		if g <= baseGoroutines+2 && (fds < 0 || baseFDs < 0 || fds <= baseFDs+2) {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("leak: goroutines %d (base %d), fds %d (base %d)", g, baseGoroutines, fds, baseFDs)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
