// Package chaos is a deterministic, seeded fault-injection layer for the
// wire substrate. ImpairedConn wraps any net.PacketConn and injects drop,
// duplicate, reorder, delay, truncate and corrupt faults — independently
// per direction, at configurable rates, optionally modulated by a
// Gilbert-style on/off burst process — so the measurement stack's failure
// handling (liveness handshakes, watchdogs, retry policies, partial-result
// aborts) can be exercised under -race in ordinary unit tests instead of
// on a broken network.
//
// Determinism: every fault decision is drawn from a per-direction
// math/rand stream seeded at Wrap time, so a given seed and packet
// sequence always produces the same impairment pattern. Two directions use
// decoupled streams, making each direction's pattern independent of how
// reads and writes interleave.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"badabing/internal/wire"
)

// Fault is one direction's impairment profile. All rates are
// probabilities in [0,1] applied per packet; the zero value passes
// traffic through untouched.
type Fault struct {
	// Drop is the probability of silently discarding a packet.
	Drop float64
	// Duplicate is the probability of delivering a packet twice.
	Duplicate float64
	// Reorder is the probability of holding a packet back and delivering
	// it after the next packet (adjacent swap).
	Reorder float64
	// Delay is the probability of delaying a packet by a uniform draw
	// from [DelayMin, DelayMax].
	Delay              float64
	DelayMin, DelayMax time.Duration
	// Truncate is the probability of cutting a packet to a random
	// shorter length (possibly below the wire header size, which the
	// collector must treat as loss, never crash on).
	Truncate float64
	// Corrupt is the probability of flipping one random byte.
	Corrupt float64

	// Gilbert-style burst episodes: when BurstEnter > 0, a two-state
	// on/off process modulates loss. Each packet advances the state
	// (good→bad with BurstEnter, bad→good with BurstExit); while bad,
	// packets drop with probability BurstDrop (default 1). This produces
	// the correlated loss episodes the paper's estimator is designed to
	// measure — and distinguishes them from infrastructure death, which
	// the failure layer must handle out-of-band.
	BurstEnter float64
	BurstExit  float64
	BurstDrop  float64
}

// enabled reports whether the profile does anything at all.
func (f Fault) enabled() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 || f.Delay > 0 ||
		f.Truncate > 0 || f.Corrupt > 0 || f.BurstEnter > 0
}

// Stats counts the faults a direction has applied.
type Stats struct {
	Packets      uint64 // packets that entered this direction
	Dropped      uint64 // uniform drops
	BurstDropped uint64 // drops while in the Gilbert bad state
	Duplicated   uint64
	Reordered    uint64
	Delayed      uint64
	Truncated    uint64
	Corrupted    uint64
}

// Delivered returns how many packets came out the other side (duplicates
// add, drops subtract).
func (s Stats) Delivered() uint64 {
	return s.Packets - s.Dropped - s.BurstDropped + s.Duplicated
}

// packet is a buffered datagram with its delivery modifications applied.
type packet struct {
	data  []byte
	addr  net.Addr
	delay time.Duration
}

// direction holds one side's fault state. Its own mutex serializes fault
// decisions so the read and write paths never contend on each other.
type direction struct {
	mu    sync.Mutex
	f     Fault
	rng   *rand.Rand
	bad   bool    // Gilbert state
	held  *packet // reorder hold, delivered after the next packet
	ready []packet
	stats Stats
}

// outcome is the fault decision for one packet.
type outcome struct {
	drop    bool
	dup     bool
	reorder bool
	delay   time.Duration
}

// decide draws this packet's faults and applies the in-place mutations
// (corrupt, truncate). Caller holds d.mu.
func (d *direction) decide(data []byte) ([]byte, outcome) {
	var o outcome
	f := &d.f
	d.stats.Packets++
	if f.BurstEnter > 0 {
		if !d.bad {
			d.bad = d.rng.Float64() < f.BurstEnter
		} else {
			d.bad = !(d.rng.Float64() < f.BurstExit)
		}
		if d.bad {
			burstDrop := f.BurstDrop
			if burstDrop == 0 {
				burstDrop = 1
			}
			if d.rng.Float64() < burstDrop {
				d.stats.BurstDropped++
				o.drop = true
				return data, o
			}
		}
	}
	if f.Drop > 0 && d.rng.Float64() < f.Drop {
		d.stats.Dropped++
		o.drop = true
		return data, o
	}
	if f.Corrupt > 0 && d.rng.Float64() < f.Corrupt && len(data) > 0 {
		data[d.rng.Intn(len(data))] ^= 1 << uint(d.rng.Intn(8))
		d.stats.Corrupted++
	}
	if f.Truncate > 0 && d.rng.Float64() < f.Truncate && len(data) > 1 {
		data = data[:1+d.rng.Intn(len(data)-1)]
		d.stats.Truncated++
	}
	if f.Duplicate > 0 && d.rng.Float64() < f.Duplicate {
		d.stats.Duplicated++
		o.dup = true
	}
	if f.Reorder > 0 && d.rng.Float64() < f.Reorder {
		d.stats.Reordered++
		o.reorder = true
	}
	if f.Delay > 0 && d.rng.Float64() < f.Delay {
		span := f.DelayMax - f.DelayMin
		o.delay = f.DelayMin
		if span > 0 {
			o.delay += time.Duration(d.rng.Int63n(int64(span)))
		}
		if o.delay > 0 {
			d.stats.Delayed++
		}
	}
	return data, o
}

// ImpairedConn injects faults into both directions of a net.PacketConn.
// Inbound faults apply to packets surfaced by ReadFrom, outbound faults
// to packets submitted through WriteTo. Fault profiles can be swapped at
// runtime (SetInbound/SetOutbound) — the FlakyReflector uses that to hang
// and recover a live socket.
type ImpairedConn struct {
	inner net.PacketConn
	in    direction
	out   direction

	wmu    sync.Mutex // serializes underlying writes (incl. delayed ones)
	closed sync.Once
	wg     sync.WaitGroup // delayed writes in flight
	dead   chan struct{}
}

// Wrap builds an ImpairedConn over conn. The two directions draw from
// decoupled RNG streams derived from seed, so the same seed and packet
// sequence reproduces the same fault pattern regardless of read/write
// interleaving.
func Wrap(conn net.PacketConn, inbound, outbound Fault, seed int64) *ImpairedConn {
	c := &ImpairedConn{inner: conn, dead: make(chan struct{})}
	c.in.f = inbound
	c.in.rng = rand.New(rand.NewSource(seed))
	c.out.f = outbound
	c.out.rng = rand.New(rand.NewSource(seed ^ 0x5E3779B97F4A7C15))
	return c
}

// SetInbound swaps the inbound fault profile at runtime.
func (c *ImpairedConn) SetInbound(f Fault) {
	c.in.mu.Lock()
	c.in.f = f
	c.in.mu.Unlock()
}

// SetOutbound swaps the outbound fault profile at runtime.
func (c *ImpairedConn) SetOutbound(f Fault) {
	c.out.mu.Lock()
	c.out.f = f
	c.out.mu.Unlock()
}

// InboundStats returns the inbound direction's fault tallies.
func (c *ImpairedConn) InboundStats() Stats {
	c.in.mu.Lock()
	defer c.in.mu.Unlock()
	return c.in.stats
}

// OutboundStats returns the outbound direction's fault tallies.
func (c *ImpairedConn) OutboundStats() Stats {
	c.out.mu.Lock()
	defer c.out.mu.Unlock()
	return c.out.stats
}

// ReadFrom surfaces the next surviving inbound packet, applying the
// inbound fault profile. Dropped packets are consumed and skipped; a
// reordered packet is held until the packet behind it has been delivered;
// duplicates are delivered back to back; a delayed packet sleeps its
// delay before delivery (modelling added latency — packets queued behind
// it wait too, like a real bottleneck).
func (c *ImpairedConn) ReadFrom(p []byte) (int, net.Addr, error) {
	d := &c.in
	for {
		d.mu.Lock()
		if len(d.ready) > 0 {
			pkt := d.ready[0]
			d.ready = d.ready[1:]
			c.releaseHold(d)
			d.mu.Unlock()
			return c.deliver(pkt, p)
		}
		d.mu.Unlock()

		n, addr, err := c.inner.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}

		d.mu.Lock()
		if !d.f.enabled() {
			d.mu.Unlock()
			return n, addr, nil
		}
		data, o := d.decide(p[:n])
		if o.drop {
			d.mu.Unlock()
			continue
		}
		buf := append([]byte(nil), data...)
		pkt := packet{data: buf, addr: addr, delay: o.delay}
		if o.reorder && d.held == nil {
			// Hold this packet; it is released behind the next one.
			d.held = &pkt
			d.mu.Unlock()
			continue
		}
		if o.dup {
			d.ready = append(d.ready, packet{data: buf, addr: addr})
		}
		c.releaseHold(d)
		d.mu.Unlock()
		return c.deliver(pkt, p)
	}
}

// releaseHold moves a held (reordered) packet into the ready queue once a
// packet that overtook it is being delivered. Caller holds d.mu.
func (c *ImpairedConn) releaseHold(d *direction) {
	if d.held != nil {
		d.ready = append(d.ready, *d.held)
		d.held = nil
	}
}

func (c *ImpairedConn) deliver(pkt packet, p []byte) (int, net.Addr, error) {
	if pkt.delay > 0 {
		time.Sleep(pkt.delay)
	}
	return copy(p, pkt.data), pkt.addr, nil
}

// WriteTo submits a packet through the outbound fault profile. Drops
// report success (the network ate it, not the caller); delayed packets
// are written by a timer and can naturally overtake later writes.
func (c *ImpairedConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	d := &c.out
	d.mu.Lock()
	if !d.f.enabled() {
		d.mu.Unlock()
		c.wmu.Lock()
		defer c.wmu.Unlock()
		return c.inner.WriteTo(p, addr)
	}
	data, o := d.decide(append([]byte(nil), p...))
	if o.drop {
		d.mu.Unlock()
		return len(p), nil
	}
	pkt := packet{data: data, addr: addr, delay: o.delay}
	var flush []packet
	if o.reorder && d.held == nil {
		d.held = &pkt
		d.mu.Unlock()
		return len(p), nil
	}
	if d.held != nil {
		flush = append(flush, *d.held)
		d.held = nil
	}
	d.mu.Unlock()

	c.send(pkt)
	if o.dup {
		c.send(packet{data: pkt.data, addr: addr})
	}
	for _, held := range flush {
		c.send(held)
	}
	return len(p), nil
}

// ReadBatch implements wire.BatchConn by delivering exactly one
// surviving inbound packet per call: fault decisions are drawn per
// packet from the same RNG stream in the same order as ReadFrom, so an
// impaired path behaves identically whether the wire stack reads it
// batched or packet-at-a-time (the chaos matrix pins the resulting
// estimates bit-identical).
func (c *ImpairedConn) ReadBatch(ms []wire.Message) (int, error) {
	if len(ms) == 0 {
		return 0, nil
	}
	n, addr, err := c.ReadFrom(ms[0].Buf)
	if err != nil {
		return 0, err
	}
	ms[0].N = n
	ms[0].Addr = addr
	return 1, nil
}

// WriteBatch implements wire.BatchConn by routing every message through
// the per-packet outbound fault path.
func (c *ImpairedConn) WriteBatch(ms []wire.Message) (int, error) {
	for i := range ms {
		if ms[i].Addr == nil {
			return i, fmt.Errorf("chaos: batch write without destination")
		}
		if _, err := c.WriteTo(ms[i].Buf[:ms[i].N], ms[i].Addr); err != nil {
			return i, err
		}
	}
	return len(ms), nil
}

// send writes a packet now or, if delayed, from a timer goroutine.
func (c *ImpairedConn) send(pkt packet) {
	write := func() {
		select {
		case <-c.dead:
			return
		default:
		}
		c.wmu.Lock()
		defer c.wmu.Unlock()
		c.inner.WriteTo(pkt.data, pkt.addr)
	}
	if pkt.delay <= 0 {
		write()
		return
	}
	c.wg.Add(1)
	time.AfterFunc(pkt.delay, func() {
		defer c.wg.Done()
		write()
	})
}

// Close flushes in-flight delayed writes, then closes the wrapped socket.
func (c *ImpairedConn) Close() error {
	var err error
	c.closed.Do(func() {
		close(c.dead)
		c.wg.Wait()
		err = c.inner.Close()
	})
	return err
}

// LocalAddr returns the wrapped socket's local address.
func (c *ImpairedConn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetDeadline delegates to the wrapped socket.
func (c *ImpairedConn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline delegates to the wrapped socket.
func (c *ImpairedConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline delegates to the wrapped socket.
func (c *ImpairedConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
