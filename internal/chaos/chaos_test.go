package chaos_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"badabing/internal/badabing"
	"badabing/internal/chaos"
	"badabing/internal/session"
	"badabing/internal/session/wiretransport"
	"badabing/internal/wire"
)

// memConn is an in-memory net.PacketConn: reads pop from a channel, writes
// append to a log. It gives the fault engine a fully scripted packet
// sequence, which is what determinism tests need.
type memConn struct {
	in chan []byte

	mu  sync.Mutex
	out [][]byte

	closeOnce sync.Once
	dead      chan struct{}
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

func newMemConn(buffered int) *memConn {
	return &memConn{in: make(chan []byte, buffered), dead: make(chan struct{})}
}

func (m *memConn) push(b []byte) { m.in <- append([]byte(nil), b...) }

func (m *memConn) ReadFrom(p []byte) (int, net.Addr, error) {
	// Drain buffered packets before honoring close, so push-then-Close
	// sequences are deterministic.
	select {
	case b := <-m.in:
		return copy(p, b), memAddr{}, nil
	default:
	}
	select {
	case b := <-m.in:
		return copy(p, b), memAddr{}, nil
	case <-m.dead:
		return 0, nil, net.ErrClosed
	}
}

func (m *memConn) WriteTo(p []byte, _ net.Addr) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.out = append(m.out, append([]byte(nil), p...))
	return len(p), nil
}

func (m *memConn) writes() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([][]byte(nil), m.out...)
}

func (m *memConn) Close() error {
	m.closeOnce.Do(func() { close(m.dead) })
	return nil
}
func (m *memConn) LocalAddr() net.Addr              { return memAddr{} }
func (m *memConn) SetDeadline(time.Time) error      { return nil }
func (m *memConn) SetReadDeadline(time.Time) error  { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error { return nil }

// pkt builds a distinguishable payload.
func pkt(i int) []byte { return []byte{byte(i), byte(i >> 8), 0xAB, byte(i), byte(i), byte(i)} }

// TestImpairedConnDeterministic: the same seed over the same packet
// sequence must reproduce the exact same fault pattern; a different seed
// must not.
func TestImpairedConnDeterministic(t *testing.T) {
	run := func(seed int64) (chaos.Stats, [][]byte) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{
			Drop: 0.25, Duplicate: 0.15, Reorder: 0.2, Truncate: 0.1, Corrupt: 0.1,
		}, seed)
		for i := 0; i < 300; i++ {
			if _, err := ic.WriteTo(pkt(i), memAddr{}); err != nil {
				t.Fatalf("WriteTo: %v", err)
			}
		}
		return ic.OutboundStats(), mc.writes()
	}
	s1, w1 := run(42)
	s2, w2 := run(42)
	if s1 != s2 {
		t.Fatalf("same seed diverged:\n %+v\n %+v", s1, s2)
	}
	if len(w1) != len(w2) {
		t.Fatalf("same seed delivered %d vs %d packets", len(w1), len(w2))
	}
	for i := range w1 {
		if !bytes.Equal(w1[i], w2[i]) {
			t.Fatalf("same seed diverged at delivered packet %d", i)
		}
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Reordered == 0 || s1.Truncated == 0 || s1.Corrupted == 0 {
		t.Fatalf("fault classes not all exercised: %+v", s1)
	}
	s3, _ := run(43)
	if s1 == s3 {
		t.Fatalf("different seeds produced identical fault pattern: %+v", s1)
	}
}

// TestImpairedConnWriteFaultClasses pins the per-class write-side
// behavior with probability-1 profiles.
func TestImpairedConnWriteFaultClasses(t *testing.T) {
	t.Run("drop", func(t *testing.T) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{Drop: 1}, 1)
		for i := 0; i < 10; i++ {
			ic.WriteTo(pkt(i), memAddr{})
		}
		if got := mc.writes(); len(got) != 0 {
			t.Fatalf("drop=1 delivered %d packets", len(got))
		}
		if st := ic.OutboundStats(); st.Dropped != 10 || st.Delivered() != 0 {
			t.Fatalf("stats: %+v", st)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{Duplicate: 1}, 1)
		for i := 0; i < 5; i++ {
			ic.WriteTo(pkt(i), memAddr{})
		}
		if got := mc.writes(); len(got) != 10 {
			t.Fatalf("duplicate=1 delivered %d packets, want 10", len(got))
		}
	})
	t.Run("reorder", func(t *testing.T) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{Reorder: 1}, 1)
		for i := 0; i < 4; i++ {
			ic.WriteTo(pkt(i), memAddr{})
		}
		got := mc.writes()
		// 0 held; 1 delivered then releases 0; 2 held; 3 delivered then
		// releases 2.
		want := [][]byte{pkt(1), pkt(0), pkt(3), pkt(2)}
		if len(got) != len(want) {
			t.Fatalf("reorder=1 delivered %d packets, want %d", len(got), len(want))
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("packet %d = %v, want %v (adjacent swap)", i, got[i], want[i])
			}
		}
	})
	t.Run("truncate", func(t *testing.T) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{Truncate: 1}, 1)
		for i := 0; i < 8; i++ {
			ic.WriteTo(pkt(i), memAddr{})
		}
		for i, w := range mc.writes() {
			if len(w) >= len(pkt(0)) {
				t.Fatalf("packet %d not truncated: %d bytes", i, len(w))
			}
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{Corrupt: 1}, 1)
		for i := 0; i < 8; i++ {
			ic.WriteTo(pkt(i), memAddr{})
		}
		for i, w := range mc.writes() {
			if bytes.Equal(w, pkt(i)) {
				t.Fatalf("packet %d not corrupted", i)
			}
			if len(w) != len(pkt(i)) {
				t.Fatalf("corrupt changed length: %d -> %d", len(pkt(i)), len(w))
			}
		}
	})
	t.Run("delay", func(t *testing.T) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{
			Delay: 1, DelayMin: 30 * time.Millisecond, DelayMax: 40 * time.Millisecond,
		}, 1)
		ic.WriteTo(pkt(0), memAddr{})
		if got := mc.writes(); len(got) != 0 {
			t.Fatalf("delayed packet delivered immediately")
		}
		deadline := time.Now().Add(2 * time.Second)
		for len(mc.writes()) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("delayed packet never delivered")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
	t.Run("burst", func(t *testing.T) {
		mc := newMemConn(0)
		ic := chaos.Wrap(mc, chaos.Fault{}, chaos.Fault{BurstEnter: 1, BurstExit: 0}, 1)
		for i := 0; i < 10; i++ {
			ic.WriteTo(pkt(i), memAddr{})
		}
		st := ic.OutboundStats()
		if st.BurstDropped != 10 {
			t.Fatalf("burst enter=1 exit=0 should drop everything: %+v", st)
		}
	})
}

// TestImpairedConnReadFaults drives the inbound direction: drops consume
// packets, duplicates are delivered twice, reordering swaps neighbours.
func TestImpairedConnReadFaults(t *testing.T) {
	mc := newMemConn(16)
	ic := chaos.Wrap(mc, chaos.Fault{Duplicate: 1}, chaos.Fault{}, 1)
	mc.push(pkt(1))
	buf := make([]byte, 64)
	for want, i := []int{1, 1}, 0; i < len(want); i++ {
		n, _, err := ic.ReadFrom(buf)
		if err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		if !bytes.Equal(buf[:n], pkt(want[i])) {
			t.Fatalf("read %d = %v, want pkt(%d)", i, buf[:n], want[i])
		}
	}

	mc2 := newMemConn(16)
	ic2 := chaos.Wrap(mc2, chaos.Fault{Drop: 1}, chaos.Fault{}, 1)
	mc2.push(pkt(0))
	mc2.Close()
	if _, _, err := ic2.ReadFrom(buf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("drop=1 should consume the packet and surface close, got %v", err)
	}
	if st := ic2.InboundStats(); st.Dropped != 1 {
		t.Fatalf("inbound stats: %+v", st)
	}
}

// fastWatchdog is a watchdog tuned for test-speed failure detection.
func fastWatchdog() wiretransport.WatchdogConfig {
	return wiretransport.WatchdogConfig{
		ConsecutiveProbes: 8,
		Grace:             150 * time.Millisecond,
		Recheck: wire.LivenessConfig{
			Attempts: 2, Timeout: 100 * time.Millisecond,
			Backoff: 50 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
		},
	}
}

// requireFloat64bitsEqual asserts two estimate sets are bit-identical.
func requireFloat64bitsEqual(t *testing.T, name string, got, want badabing.Estimates) {
	t.Helper()
	if got.M != want.M || got.HasDuration != want.HasDuration ||
		got.HasDurationBasic != want.HasDurationBasic || got.HasDurationImproved != want.HasDurationImproved {
		t.Fatalf("%s: estimates diverged:\n got %+v\nwant %+v", name, got, want)
	}
	for _, f := range []struct {
		field     string
		got, want float64
	}{
		{"Frequency", got.Frequency, want.Frequency},
		{"Duration", got.Duration, want.Duration},
		{"DurationBasic", got.DurationBasic, want.DurationBasic},
		{"DurationImproved", got.DurationImproved, want.DurationImproved},
	} {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Fatalf("%s: %s not Float64bits-identical: %x vs %x (%v vs %v)",
				name, f.field, math.Float64bits(f.got), math.Float64bits(f.want), f.got, f.want)
		}
	}
}

// TestImpairedAliveParity is the acceptance matrix: a path impaired by
// every fault class — but alive — must still produce session estimates
// Float64bits-identical to the collector's batch pipeline over the same
// observation log, and must never trip the dead-path watchdog.
func TestImpairedAliveParity(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for ~2s per profile")
	}
	profiles := []struct {
		name       string
		in, out    chaos.Fault
		expectLoss bool
	}{
		{"drop", chaos.Fault{Drop: 0.15}, chaos.Fault{Drop: 0.1}, true},
		{"reorder-delay", chaos.Fault{Reorder: 0.25, Delay: 0.3, DelayMin: 500 * time.Microsecond, DelayMax: 3 * time.Millisecond},
			chaos.Fault{Reorder: 0.1, Delay: 0.2, DelayMin: 500 * time.Microsecond, DelayMax: 2 * time.Millisecond}, false},
		{"duplicate", chaos.Fault{Duplicate: 0.2}, chaos.Fault{Duplicate: 0.1}, false},
		{"burst", chaos.Fault{BurstEnter: 0.02, BurstExit: 0.3}, chaos.Fault{}, false},
		{"kitchen-sink", chaos.Fault{Drop: 0.1, Duplicate: 0.05, Reorder: 0.1, Delay: 0.2, DelayMin: 500 * time.Microsecond, DelayMax: 2 * time.Millisecond},
			chaos.Fault{Drop: 0.1}, true},
	}
	for i, prof := range profiles {
		prof := prof
		seed := int64(100 + i)
		t.Run(prof.name, func(t *testing.T) {
			t.Parallel()
			fr := chaos.NewFlakyReflector(prof.in, prof.out, seed)
			if err := fr.Start(); err != nil {
				t.Fatal(err)
			}
			defer fr.Kill()

			const (
				p     = 0.3
				slots = 150
				slotW = 10 * time.Millisecond
			)
			cfg := session.Config{
				P: p, Slots: slots, Slot: slotW, Improved: true, Seed: seed,
				StepSlots: 50, Settle: 400 * time.Millisecond,
			}
			tr, err := wiretransport.DialOptions(fr.Addr().String(), wire.SenderConfig{
				ExpID: uint64(seed), P: p, N: slots, Slot: slotW, Improved: true, Seed: seed,
			}, wiretransport.Options{
				Liveness: wire.LivenessConfig{Seed: seed, Timeout: 200 * time.Millisecond},
			})
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer tr.Close()

			res, err := session.Run(context.Background(), tr, cfg, nil)
			if err != nil {
				t.Fatalf("impaired-but-alive session must survive, got %v", err)
			}
			if res.Aborted {
				t.Fatal("impaired-but-alive session flagged aborted")
			}
			if prof.expectLoss && res.Final.Counters.PacketsLost == 0 {
				t.Errorf("profile %s produced no loss", prof.name)
			}

			// One marking pipeline, two consumers: the streaming session
			// result must match batch estimation over the very same
			// collector log, bit for bit.
			marker := badabing.RecommendedMarker(p, slotW)
			counts, _, err := tr.Collector().Snapshot(tr.ExpID(), marker)
			if err != nil {
				t.Fatalf("collector snapshot: %v", err)
			}
			acc := &badabing.Accumulator{Slot: slotW}
			acc.Merge(counts)
			want := badabing.EstimatesOf(acc)
			requireFloat64bitsEqual(t, prof.name, res.Final.Snapshot.Total, want)
			if want.M == 0 {
				t.Fatal("parity vacuous: no experiments assembled")
			}
		})
	}
}

// TestBatchFallbackParity is the batch-equivalence row of the acceptance
// matrix: the same seeded session run twice — once over the batched
// sendmmsg/recvmmsg hot path, once forced onto the portable
// single-packet fallback — must produce Float64bits-identical estimates.
// Batching is a throughput optimization; it must never change what is
// measured.
//
// Two profiles pin the two deterministic regimes:
//
//   - "lossless-impaired": duplicates and reordering but no drops, under
//     the full §6.1 recommended marker. With no losses the marker has no
//     loss times, so marks cannot depend on loopback delay jitter.
//   - "drop": deterministic seeded drops, under a loss-only marker
//     (Tau=0: delay marking needs a loss within τ, so only lost probes
//     mark). The loss pattern is fixed by the fault RNG's per-packet
//     draw order, which ImpairedConn keeps identical on both paths by
//     delivering batch reads one datagram at a time.
func TestBatchFallbackParity(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for ~3.6s per run")
	}
	profiles := []struct {
		name       string
		in, out    chaos.Fault
		marker     badabing.MarkerConfig
		expectLoss bool
	}{
		{"lossless-impaired", chaos.Fault{Duplicate: 0.2, Reorder: 0.15}, chaos.Fault{Duplicate: 0.1},
			badabing.MarkerConfig{}, false}, // zero value → RecommendedMarker
		{"drop", chaos.Fault{Drop: 0.12}, chaos.Fault{Drop: 0.08},
			badabing.MarkerConfig{Tau: 0, MaxEstimates: 1}, true},
	}
	for i, prof := range profiles {
		prof := prof
		seed := int64(500 + i)
		// Deliberately NOT t.Parallel: two concurrently pacing sessions
		// on a small CI runner contend at slot edges, and sustained
		// contention defeats the retry-on-Skipped escape hatch below.
		t.Run(prof.name, func(t *testing.T) {
			const (
				p     = 0.3
				slots = 120
				slotW = 30 * time.Millisecond // lateLimit 15ms: pacing jitter cannot skip experiments
			)
			runOnce := func(disableBatch bool) *session.Result {
				fr := chaos.NewFlakyReflector(prof.in, prof.out, seed)
				if err := fr.Start(); err != nil {
					t.Fatal(err)
				}
				defer fr.Kill()
				tr, err := wiretransport.DialOptions(fr.Addr().String(), wire.SenderConfig{
					ExpID: uint64(seed), P: p, N: slots, Slot: slotW, Improved: true,
					Seed: seed, DisableBatch: disableBatch,
				}, wiretransport.Options{
					// No handshake: the fault RNG's draw sequence must
					// start at the first probe on both paths.
					SkipHandshake: true,
				})
				if err != nil {
					t.Fatalf("Dial: %v", err)
				}
				defer tr.Close()
				res, err := session.Run(context.Background(), tr, session.Config{
					P: p, Slots: slots, Slot: slotW, Improved: true, Seed: seed,
					StepSlots: 40, Settle: 400 * time.Millisecond, Marker: prof.marker,
				}, nil)
				if err != nil {
					t.Fatalf("session (disableBatch=%v): %v", disableBatch, err)
				}
				return res
			}
			// A host scheduling hiccup >slotW/2 makes the collector skip
			// the late experiment — an environmental artifact orthogonal
			// to the batch-vs-fallback question. Skipped is observable,
			// so retry such runs instead of weakening the assertion.
			run := func(disableBatch bool) *session.Result {
				for attempt := 0; ; attempt++ {
					res := runOnce(disableBatch)
					if res.Final.Counters.Skipped == 0 {
						return res
					}
					if attempt == 3 {
						t.Fatalf("pacing lag skipped experiments in 4 straight runs (disableBatch=%v)", disableBatch)
					}
					t.Logf("retrying disableBatch=%v: pacing lag skipped %d experiments", disableBatch, res.Final.Counters.Skipped)
				}
			}

			batch := run(false)
			fallback := run(true)

			requireFloat64bitsEqual(t, prof.name, batch.Final.Snapshot.Total, fallback.Final.Snapshot.Total)
			if batch.Final.Snapshot.Total.M == 0 {
				t.Fatal("parity vacuous: no experiments assembled")
			}
			bc, fc := batch.Final.Counters, fallback.Final.Counters
			if bc.PacketsLost != fc.PacketsLost || bc.ProbesLost != fc.ProbesLost {
				t.Fatalf("reception diverged between paths: batch lost %d pkts/%d probes, fallback %d/%d",
					bc.PacketsLost, bc.ProbesLost, fc.PacketsLost, fc.ProbesLost)
			}
			if prof.expectLoss && bc.PacketsLost == 0 {
				t.Error("drop profile produced no loss; parity not exercised")
			}
		})
	}
}

// TestHungReflectorAbortsPartial kills the far end softly mid-session —
// the socket stays open, nothing comes back — and requires the watchdog
// to abort with partial estimates that exclude the outage: a dead
// reflector must never be reported as measured loss (F stays 0 here,
// since the path was clean while alive).
func TestHungReflectorAbortsPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for seconds")
	}
	fr := chaos.NewFlakyReflector(chaos.Fault{}, chaos.Fault{}, 7)
	if err := fr.Start(); err != nil {
		t.Fatal(err)
	}
	defer fr.Kill()

	const (
		p     = 0.3
		slots = 3000 // 30s horizon; the watchdog must cut it far shorter
		slotW = 10 * time.Millisecond
	)
	tr, err := wiretransport.DialOptions(fr.Addr().String(), wire.SenderConfig{
		ExpID: 7, P: p, N: slots, Slot: slotW, Improved: true, Seed: 7,
	}, wiretransport.Options{
		Liveness: wire.LivenessConfig{Seed: 7},
		Watchdog: fastWatchdog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	go func() {
		time.Sleep(800 * time.Millisecond)
		fr.Hang()
	}()

	start := time.Now()
	res, err := session.Run(context.Background(), tr, session.Config{
		P: p, Slots: slots, Slot: slotW, Improved: true, Seed: 7,
		StepSlots: 30, Settle: 300 * time.Millisecond,
	}, nil)
	if !errors.Is(err, session.ErrPathDead) {
		t.Fatalf("Run returned %v, want ErrPathDead", err)
	}
	if took := time.Since(start); took > 15*time.Second {
		t.Fatalf("watchdog took %v to abort a hung path", took)
	}
	if res == nil || !res.Aborted {
		t.Fatalf("want partial aborted result, got %+v", res)
	}
	c := res.Final.Counters
	if c.ProbesSent == 0 {
		t.Fatal("partial result holds no pre-outage probes")
	}
	if c.ProbesSent >= int64(res.Probes) {
		t.Fatalf("session claims all %d probes measured across an outage", res.Probes)
	}
	// The path was clean while alive: the outage must not leak into the
	// estimates as loss.
	if c.ProbesLost != 0 {
		t.Errorf("outage reported as %d lost probes", c.ProbesLost)
	}
	if f := res.Final.Snapshot.Total.Frequency; f != 0 {
		t.Errorf("outage reported as loss frequency %v", f)
	}
	if tr.DeadFrom() < 0 {
		t.Error("transport did not record the death point")
	}
}

// TestKilledReflectorAbortsPartial crashes the far end hard (socket
// closed → ICMP refused on loopback): the sender's consecutive
// write-failure guard or the watchdog must abort the session with flagged
// partial estimates, again without fabricating loss.
func TestKilledReflectorAbortsPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("paces real probes for seconds")
	}
	fr := chaos.NewFlakyReflector(chaos.Fault{}, chaos.Fault{}, 9)
	if err := fr.Start(); err != nil {
		t.Fatal(err)
	}
	defer fr.Kill()

	const (
		p     = 0.3
		slots = 3000
		slotW = 10 * time.Millisecond
	)
	tr, err := wiretransport.DialOptions(fr.Addr().String(), wire.SenderConfig{
		ExpID: 9, P: p, N: slots, Slot: slotW, Improved: true, Seed: 9,
	}, wiretransport.Options{
		Liveness: wire.LivenessConfig{Seed: 9},
		Watchdog: fastWatchdog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	go func() {
		time.Sleep(700 * time.Millisecond)
		fr.Kill()
	}()

	res, err := session.Run(context.Background(), tr, session.Config{
		P: p, Slots: slots, Slot: slotW, Improved: true, Seed: 9,
		StepSlots: 30, Settle: 300 * time.Millisecond,
	}, nil)
	if !errors.Is(err, session.ErrPathDead) {
		t.Fatalf("Run returned %v, want ErrPathDead", err)
	}
	if res == nil || !res.Aborted {
		t.Fatalf("want partial aborted result, got %+v", res)
	}
	if f := res.Final.Snapshot.Total.Frequency; f != 0 {
		t.Errorf("outage reported as loss frequency %v", f)
	}
}

// TestHandshakeDeadTargetFailsFast: a session against a target that was
// never alive must fail at the liveness handshake — before a single probe
// is paced — instead of measuring a ghost path for its whole horizon.
func TestHandshakeDeadTargetFailsFast(t *testing.T) {
	// Grab a loopback port with nothing behind it.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	target := pc.LocalAddr().String()
	pc.Close()

	tr, err := wiretransport.DialOptions(target, wire.SenderConfig{
		ExpID: 3, P: 0.3, N: 1000, Slot: 10 * time.Millisecond, Seed: 3,
	}, wiretransport.Options{
		Liveness: wire.LivenessConfig{
			Attempts: 2, Timeout: 100 * time.Millisecond,
			Backoff: 50 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, Seed: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	start := time.Now()
	_, err = session.Run(context.Background(), tr, session.Config{
		P: 0.3, Slots: 1000, Slot: 10 * time.Millisecond, Seed: 3,
	}, nil)
	if !errors.Is(err, session.ErrPathDead) {
		t.Fatalf("Run returned %v, want ErrPathDead from the handshake", err)
	}
	if !errors.Is(err, wire.ErrNotAlive) {
		t.Fatalf("handshake failure should wrap wire.ErrNotAlive: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("dead target took %v to reject; must fail fast", took)
	}
}

// TestFlakyReflectorRestart: Kill then Start rebinds the same address and
// echoes again.
func TestFlakyReflectorRestart(t *testing.T) {
	fr := chaos.NewFlakyReflector(chaos.Fault{}, chaos.Fault{}, 5)
	if err := fr.Start(); err != nil {
		t.Fatal(err)
	}
	addr := fr.Addr().String()
	fr.Kill()
	if fr.Alive() {
		t.Fatal("killed reflector claims alive")
	}
	if err := fr.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer fr.Kill()
	if got := fr.Addr().String(); got != addr {
		t.Fatalf("restart moved the reflector: %s -> %s", addr, got)
	}

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := wire.Handshake(context.Background(), conn, wire.LivenessConfig{
		Attempts: 4, Timeout: 200 * time.Millisecond, Seed: 5,
	}); err != nil {
		t.Fatalf("restarted reflector not alive: %v", err)
	}
}
