package chaos

import (
	"fmt"
	"net"
	"sync"

	"badabing/internal/wire"
)

// FlakyReflector is a wire.Reflector harness that can fail the way real
// measurement infrastructure does: it can hang (socket open, nothing
// comes back — a blackhole), die (socket closed — connected senders see
// ICMP refused), and restart on the same address mid-session. Its socket
// is wrapped in an ImpairedConn, so a "merely lossy" profile can be
// layered under the life-cycle faults.
type FlakyReflector struct {
	inF, outF Fault
	seed      int64

	mu    sync.Mutex
	addr  *net.UDPAddr // pinned on first Start so restarts reuse the port
	conn  *ImpairedConn
	refl  *wire.Reflector
	runs  int
	alive bool
}

// NewFlakyReflector prepares a reflector with the given steady-state
// impairment profiles. Call Start to bind and begin echoing.
func NewFlakyReflector(inbound, outbound Fault, seed int64) *FlakyReflector {
	return &FlakyReflector{inF: inbound, outF: outbound, seed: seed}
}

// Start binds (127.0.0.1, ephemeral on the first call, the same port on
// restarts) and starts echoing.
func (f *FlakyReflector) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.alive {
		return fmt.Errorf("chaos: reflector already running")
	}
	laddr := f.addr
	if laddr == nil {
		laddr = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return fmt.Errorf("chaos: reflector bind %v: %w", laddr, err)
	}
	f.addr = pc.LocalAddr().(*net.UDPAddr)
	// Each incarnation advances the seed so restarts do not replay the
	// previous life's fault pattern.
	f.conn = Wrap(pc, f.inF, f.outF, f.seed+int64(f.runs))
	f.refl = wire.NewReflector(f.conn)
	f.runs++
	f.alive = true
	go f.refl.Run()
	return nil
}

// Addr returns the reflector's address (stable across restarts).
func (f *FlakyReflector) Addr() net.Addr {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.addr
}

// Hang blackholes the reflector: the socket stays open (so senders get no
// ICMP hint) but nothing is echoed or answered — the failure mode a
// liveness watchdog exists for. Recover undoes it.
func (f *FlakyReflector) Hang() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conn != nil {
		f.conn.SetInbound(Fault{Drop: 1})
		f.conn.SetOutbound(Fault{Drop: 1})
	}
}

// Recover restores the steady-state impairment profiles after a Hang.
func (f *FlakyReflector) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conn != nil {
		f.conn.SetInbound(f.inF)
		f.conn.SetOutbound(f.outF)
	}
}

// Kill closes the socket: the reflector process "crashes". Connected
// senders on loopback observe ECONNREFUSED write failures. Start (or
// Restart) brings it back on the same port.
func (f *FlakyReflector) Kill() {
	f.mu.Lock()
	refl := f.refl
	f.alive = false
	f.mu.Unlock()
	if refl != nil {
		refl.Close()
	}
}

// Restart is Kill-then-Start — a crash/recover cycle on the same address.
func (f *FlakyReflector) Restart() error {
	f.Kill()
	return f.Start()
}

// Alive reports whether the reflector is currently echoing.
func (f *FlakyReflector) Alive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.alive
}

// Reflector returns the current incarnation's reflector (nil before the
// first Start); its Packets/Pings/Dropped counters reset per incarnation.
func (f *FlakyReflector) Reflector() *wire.Reflector {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.refl
}

// Conn returns the current incarnation's impaired socket, for fault
// tallies and runtime profile swaps.
func (f *FlakyReflector) Conn() *ImpairedConn {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.conn
}
