// Package health is badabingd's self-monitoring core: a daemon-wide
// health state machine aggregating per-component probes, and a resource
// watchdog that samples goroutine, file-descriptor and heap usage
// against configurable budgets.
//
// Components (the store circuit breaker, the resource watchdog, the
// drain path) report their state into a Monitor; the daemon's overall
// state is the worst component state. The API's GET /readyz endpoint
// and the badabingd_health_* metric families read the same snapshot, so
// an operator and a load balancer see the daemon through one pair of
// eyes. The machine is intentionally simple:
//
//	ok        every component healthy; full service
//	degraded  a component is impaired but the daemon still measures
//	          (e.g. the WAL breaker is open and spilling in memory) —
//	          durability or headroom is reduced, visibly
//	failing   a component has exhausted its fallback (spill overflow,
//	          resource budget blown past the hard multiple): new work
//	          is shed with 503 until the component recovers
//
// Transitions are logged exactly once per state change, never per
// sample, so a flapping probe cannot flood the log.
package health

import (
	"sync"
	"sync/atomic"
	"time"

	"badabing/internal/obs"
)

// State is a component's (or the daemon's aggregate) health position.
type State int32

const (
	// Ok means fully healthy.
	Ok State = iota
	// Degraded means impaired but serving: reduced durability or
	// headroom that an operator should know about.
	Degraded
	// Failing means the fallback is exhausted; new work must be shed.
	Failing
)

func (s State) String() string {
	switch s {
	case Ok:
		return "ok"
	case Degraded:
		return "degraded"
	case Failing:
		return "failing"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its lowercase name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// worse returns the more severe of two states.
func worse(a, b State) State {
	if b > a {
		return b
	}
	return a
}

// Probe is one component's reported condition.
type Probe struct {
	State State `json:"state"`
	// Reason is the human-readable cause for a non-ok state ("" when ok).
	Reason string `json:"reason,omitempty"`
	// Since is when the component entered its current state.
	Since time.Time `json:"since"`
}

// Snapshot is the monitor's full view: the aggregate plus every
// component, the /readyz body shape.
type Snapshot struct {
	State      State            `json:"state"`
	Components map[string]Probe `json:"components,omitempty"`
}

// Monitor aggregates component probes into the daemon state. All
// methods are safe for concurrent use. The zero Monitor is not usable;
// call NewMonitor.
type Monitor struct {
	log *obs.Logger
	now func() time.Time

	mu         sync.Mutex
	components map[string]Probe

	// state mirrors the aggregate lock-free for hot-path admission
	// checks (every POST /v1/sessions reads it).
	state       atomic.Int32
	transitions atomic.Int64
}

// NewMonitor builds a monitor. log receives one structured line per
// state transition (nil discards them).
func NewMonitor(log *obs.Logger) *Monitor {
	return &Monitor{
		log:        log,
		now:        time.Now,
		components: make(map[string]Probe),
	}
}

// SetNow injects a clock for tests.
func (m *Monitor) SetNow(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// Set reports component's current condition. Re-reporting the same
// state refreshes the reason but neither logs nor counts a transition;
// a state change logs exactly one line and updates the aggregate.
func (m *Monitor) Set(component string, s State, reason string) {
	m.mu.Lock()
	prev, known := m.components[component]
	p := Probe{State: s, Reason: reason, Since: prev.Since}
	// A component's first report at Ok is its baseline, not a
	// transition; first reports of trouble do log.
	changed := (known && prev.State != s) || (!known && s != Ok)
	if changed {
		p.Since = m.now()
	}
	if s == Ok {
		p.Reason = ""
	}
	m.components[component] = p
	aggBefore := State(m.state.Load())
	agg := m.aggregateLocked()
	m.state.Store(int32(agg))
	m.mu.Unlock()

	if changed {
		m.transitions.Add(1)
		if reason == "" {
			reason = "recovered"
		}
		m.logTransition(s, "health transition",
			"component", component, "from", prev.State, "to", s, "reason", reason)
	}
	if agg != aggBefore {
		m.logTransition(agg, "daemon health changed", "from", aggBefore, "to", agg)
	}
}

// logTransition picks the log level from the severity being entered:
// recoveries are info, impairment is warn, failure is error.
func (m *Monitor) logTransition(s State, msg string, kv ...any) {
	switch s {
	case Failing:
		m.log.Error(msg, kv...)
	case Degraded:
		m.log.Warn(msg, kv...)
	default:
		m.log.Info(msg, kv...)
	}
}

func (m *Monitor) aggregateLocked() State {
	agg := Ok
	for _, p := range m.components {
		agg = worse(agg, p.State)
	}
	return agg
}

// State returns the aggregate daemon state (lock-free).
func (m *Monitor) State() State {
	return State(m.state.Load())
}

// Transitions counts component state changes since start.
func (m *Monitor) Transitions() int64 {
	return m.transitions.Load()
}

// Snapshot returns the aggregate plus a copy of every component probe.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		State:      m.aggregateLocked(),
		Components: make(map[string]Probe, len(m.components)),
	}
	for name, p := range m.components {
		snap.Components[name] = p
	}
	return snap
}

// RegisterMetrics registers the badabingd_health_* families into the
// observability registry; each scrape mirrors the live snapshot.
func (m *Monitor) RegisterMetrics(o *obs.Registry) {
	state := o.Gauge("badabingd_health_state", "Daemon health: 0 ok, 1 degraded, 2 failing.")
	component := o.GaugeVec("badabingd_health_component", "Component health: 0 ok, 1 degraded, 2 failing.", "component")
	transitions := o.Counter("badabingd_health_transitions_total", "Component health state changes since start.")
	o.OnScrape(func() {
		snap := m.Snapshot()
		state.SetInt(int64(snap.State))
		component.Reset()
		for name, p := range snap.Components {
			component.With(name).SetInt(int64(p.State))
		}
		transitions.Set(float64(m.Transitions()))
	})
}
