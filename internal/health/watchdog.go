package health

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"badabing/internal/obs"
)

// Budgets are the resource ceilings the watchdog enforces. A zero field
// disables that dimension. Crossing a budget degrades the daemon;
// crossing FailingMultiple times a budget marks it failing (new work is
// shed until usage falls back under).
type Budgets struct {
	// MaxGoroutines bounds runtime.NumGoroutine().
	MaxGoroutines int
	// MaxFDs bounds open file descriptors (counted via /proc/self/fd;
	// silently disabled where that is unavailable).
	MaxFDs int
	// MaxHeapBytes bounds the live heap (runtime MemStats HeapAlloc).
	MaxHeapBytes uint64
	// FailingMultiple is the hard-stop factor over a budget that
	// escalates degraded to failing. Default 2.
	FailingMultiple float64
}

func (b *Budgets) applyDefaults() {
	if b.FailingMultiple <= 1 {
		b.FailingMultiple = 2
	}
}

// Enabled reports whether any dimension has a budget.
func (b Budgets) Enabled() bool {
	return b.MaxGoroutines > 0 || b.MaxFDs > 0 || b.MaxHeapBytes > 0
}

// Usage is one watchdog sample.
type Usage struct {
	Goroutines int
	// OpenFDs is -1 where the platform offers no cheap count.
	OpenFDs   int
	HeapBytes uint64
}

// Watchdog periodically samples process resource usage against Budgets
// and feeds the result into a Monitor under the "resources" component.
// Breaches log once per transition (via the monitor), not per sample.
type Watchdog struct {
	mon      *Monitor
	budgets  Budgets
	interval time.Duration

	// sample is injectable so tests can script breaches.
	sample func() Usage

	mu   sync.Mutex
	last Usage

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// Component is the monitor component name the watchdog reports under.
const Component = "resources"

// NewWatchdog builds a watchdog feeding mon. interval <= 0 defaults to
// 10s. Start begins sampling; Check runs one pass synchronously.
func NewWatchdog(mon *Monitor, budgets Budgets, interval time.Duration) *Watchdog {
	budgets.applyDefaults()
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Watchdog{
		mon:      mon,
		budgets:  budgets,
		interval: interval,
		sample:   sampleUsage,
		stop:     make(chan struct{}),
	}
}

// SetSample injects a usage source for tests.
func (w *Watchdog) SetSample(f func() Usage) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sample = f
}

// Start launches the sampling loop (idempotent per watchdog; call once).
func (w *Watchdog) Start() {
	w.Check()
	w.done.Add(1)
	go func() {
		defer w.done.Done()
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Check()
			}
		}
	}()
}

// Stop ends the sampling loop and waits for it to exit (idempotent).
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.done.Wait()
}

// Check runs one sampling pass, updates the monitor and returns the
// state it reported.
func (w *Watchdog) Check() State {
	w.mu.Lock()
	sample := w.sample
	w.mu.Unlock()
	u := sample()
	w.mu.Lock()
	w.last = u
	w.mu.Unlock()

	state, reason := w.judge(u)
	w.mon.Set(Component, state, reason)
	return state
}

// judge grades one sample against the budgets.
func (w *Watchdog) judge(u Usage) (State, string) {
	state := Ok
	var reasons []string
	grade := func(used, budget float64, dim, unit string) {
		if budget <= 0 {
			return
		}
		switch {
		case used >= budget*w.budgets.FailingMultiple:
			state = worse(state, Failing)
			reasons = append(reasons, fmt.Sprintf("%s %.0f%s >= %.1fx budget %.0f%s", dim, used, unit, w.budgets.FailingMultiple, budget, unit))
		case used > budget:
			state = worse(state, Degraded)
			reasons = append(reasons, fmt.Sprintf("%s %.0f%s over budget %.0f%s", dim, used, unit, budget, unit))
		}
	}
	grade(float64(u.Goroutines), float64(w.budgets.MaxGoroutines), "goroutines", "")
	if u.OpenFDs >= 0 {
		grade(float64(u.OpenFDs), float64(w.budgets.MaxFDs), "fds", "")
	}
	grade(float64(u.HeapBytes), float64(w.budgets.MaxHeapBytes), "heap", "B")
	return state, strings.Join(reasons, "; ")
}

// Last returns the most recent sample (zero before the first Check).
func (w *Watchdog) Last() Usage {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// RegisterMetrics registers the watchdog gauges; each scrape mirrors
// the most recent sample. open_fds renders only where the platform can
// count file descriptors (the pre-registry writer's conditional).
func (w *Watchdog) RegisterMetrics(o *obs.Registry) {
	goroutines := o.Gauge("badabingd_watchdog_goroutines", "Goroutines at the last watchdog sample.")
	openFDs := o.GaugeVec("badabingd_watchdog_open_fds", "Open file descriptors at the last watchdog sample.")
	heap := o.Gauge("badabingd_watchdog_heap_bytes", "Live heap bytes at the last watchdog sample.")
	o.OnScrape(func() {
		u := w.Last()
		goroutines.SetInt(int64(u.Goroutines))
		openFDs.Reset()
		if u.OpenFDs >= 0 {
			openFDs.With().SetInt(int64(u.OpenFDs))
		}
		heap.Set(float64(u.HeapBytes))
	})
}

// sampleUsage reads the live process counters.
func sampleUsage() Usage {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Usage{
		Goroutines: runtime.NumGoroutine(),
		OpenFDs:    CountFDs(),
		HeapBytes:  ms.HeapAlloc,
	}
}

// CountFDs counts the process's open file descriptors via /proc/self/fd,
// -1 where that is unavailable (non-Linux). The readdir itself opens one
// fd; that transient is not subtracted — budgets are coarse.
func CountFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
