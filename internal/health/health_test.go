package health

import (
	"strings"
	"testing"
	"time"

	"badabing/internal/obs"
)

// TestMonitorAggregation: the daemon state is the worst component
// state, and recovery propagates back down.
func TestMonitorAggregation(t *testing.T) {
	m := NewMonitor(nil)
	if got := m.State(); got != Ok {
		t.Fatalf("empty monitor state = %v, want ok", got)
	}
	m.Set("store", Ok, "")
	m.Set("resources", Ok, "")
	if got := m.State(); got != Ok {
		t.Fatalf("state = %v, want ok", got)
	}
	m.Set("store", Degraded, "breaker open")
	if got := m.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded", got)
	}
	m.Set("resources", Failing, "goroutines 2x budget")
	if got := m.State(); got != Failing {
		t.Fatalf("state = %v, want failing (worst component wins)", got)
	}
	m.Set("resources", Ok, "")
	if got := m.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded (store still open)", got)
	}
	m.Set("store", Ok, "")
	if got := m.State(); got != Ok {
		t.Fatalf("state = %v, want ok after full recovery", got)
	}

	snap := m.Snapshot()
	if snap.State != Ok || len(snap.Components) != 2 {
		t.Fatalf("snapshot = %+v, want ok with 2 components", snap)
	}
	if snap.Components["store"].Reason != "" {
		t.Fatalf("ok component kept reason %q", snap.Components["store"].Reason)
	}
}

// TestMonitorLogsOncePerTransition: re-reporting the same state is
// silent; each change logs exactly one component line.
func TestMonitorLogsOncePerTransition(t *testing.T) {
	var sb strings.Builder
	m := NewMonitor(obs.NewLogger(&sb, obs.LoggerConfig{}))
	for i := 0; i < 5; i++ {
		m.Set("store", Degraded, "disk full")
	}
	if m.Transitions() != 1 {
		t.Fatalf("transitions = %d, want 1 (flapping samples must not count)", m.Transitions())
	}
	var componentLines int
	for _, l := range strings.Split(sb.String(), "\n") {
		if strings.Contains(l, "component=store") {
			componentLines++
		}
	}
	lines := sb.String()
	if componentLines != 1 {
		t.Fatalf("logged %d store lines (%q), want exactly 1", componentLines, lines)
	}
	m.Set("store", Ok, "")
	if m.Transitions() != 2 {
		t.Fatalf("transitions = %d, want 2 after recovery", m.Transitions())
	}
}

// TestMonitorSince: Since restamps only on state changes.
func TestMonitorSince(t *testing.T) {
	m := NewMonitor(nil)
	now := time.Unix(1000, 0)
	m.SetNow(func() time.Time { return now })
	m.Set("store", Degraded, "x")
	first := m.Snapshot().Components["store"].Since
	now = now.Add(time.Minute)
	m.Set("store", Degraded, "still x")
	if got := m.Snapshot().Components["store"].Since; !got.Equal(first) {
		t.Fatalf("Since restamped on a same-state report: %v -> %v", first, got)
	}
	m.Set("store", Ok, "")
	if got := m.Snapshot().Components["store"].Since; !got.Equal(now) {
		t.Fatalf("Since not restamped on transition: %v, want %v", got, now)
	}
}

// TestWatchdogBudgets drives scripted usage through every grade:
// under budget, over (degraded), over the failing multiple, and back.
func TestWatchdogBudgets(t *testing.T) {
	m := NewMonitor(nil)
	w := NewWatchdog(m, Budgets{MaxGoroutines: 100, MaxFDs: 50, MaxHeapBytes: 1 << 20}, time.Hour)
	u := Usage{Goroutines: 10, OpenFDs: 10, HeapBytes: 1 << 10}
	w.SetSample(func() Usage { return u })

	cases := []struct {
		name string
		u    Usage
		want State
	}{
		{"under", Usage{Goroutines: 99, OpenFDs: 49, HeapBytes: 1 << 19}, Ok},
		{"at budget", Usage{Goroutines: 100, OpenFDs: 50, HeapBytes: 1 << 20}, Ok},
		{"goroutines over", Usage{Goroutines: 101, OpenFDs: 10, HeapBytes: 1}, Degraded},
		{"fds over", Usage{Goroutines: 10, OpenFDs: 51, HeapBytes: 1}, Degraded},
		{"heap over", Usage{Goroutines: 10, OpenFDs: 10, HeapBytes: 1<<20 + 1}, Degraded},
		{"goroutines 2x", Usage{Goroutines: 200, OpenFDs: 10, HeapBytes: 1}, Failing},
		{"unknown fds ignored", Usage{Goroutines: 10, OpenFDs: -1, HeapBytes: 1}, Ok},
		{"recovered", Usage{Goroutines: 10, OpenFDs: 10, HeapBytes: 1}, Ok},
	}
	for _, tc := range cases {
		u = tc.u
		if got := w.Check(); got != tc.want {
			t.Errorf("%s: Check() = %v, want %v", tc.name, got, tc.want)
		}
		if got := m.Snapshot().Components[Component].State; got != tc.want {
			t.Errorf("%s: monitor component = %v, want %v", tc.name, got, tc.want)
		}
	}
	if got := w.Last(); got != cases[len(cases)-1].u {
		t.Errorf("Last() = %+v, want the final sample", got)
	}
}

// TestWatchdogZeroBudgetsDisabled: a dimension without a budget never
// breaches, whatever its usage.
func TestWatchdogZeroBudgetsDisabled(t *testing.T) {
	m := NewMonitor(nil)
	w := NewWatchdog(m, Budgets{}, time.Hour)
	w.SetSample(func() Usage {
		return Usage{Goroutines: 1 << 20, OpenFDs: 1 << 20, HeapBytes: 1 << 40}
	})
	if got := w.Check(); got != Ok {
		t.Fatalf("Check() with no budgets = %v, want ok", got)
	}
	if Budgets.Enabled(Budgets{}) {
		t.Fatal("zero budgets report Enabled")
	}
	if !(Budgets{MaxGoroutines: 1}).Enabled() {
		t.Fatal("goroutine budget not Enabled")
	}
}

// TestWatchdogLiveSample: the real sampler returns plausible values on
// this platform, and Start/Stop does not leak its ticker goroutine.
func TestWatchdogLiveSample(t *testing.T) {
	m := NewMonitor(nil)
	w := NewWatchdog(m, Budgets{MaxGoroutines: 1 << 20}, time.Millisecond)
	w.Start()
	time.Sleep(10 * time.Millisecond)
	w.Stop()
	u := w.Last()
	if u.Goroutines <= 0 {
		t.Errorf("sampled %d goroutines, want > 0", u.Goroutines)
	}
	if u.HeapBytes == 0 {
		t.Errorf("sampled 0 heap bytes")
	}
	// /proc/self/fd exists on Linux; elsewhere the count is -1 (unknown).
	if n := CountFDs(); n == 0 {
		t.Errorf("CountFDs() = 0, want > 0 or -1")
	}
	if got := m.State(); got != Ok {
		t.Errorf("live sample state = %v, want ok", got)
	}
}

// TestWatchdogMetrics: the exposition contains each gauge family.
func TestWatchdogMetrics(t *testing.T) {
	m := NewMonitor(nil)
	w := NewWatchdog(m, Budgets{MaxGoroutines: 10}, time.Hour)
	w.SetSample(func() Usage { return Usage{Goroutines: 42, OpenFDs: 7, HeapBytes: 1234} })
	w.Check()
	o := obs.NewRegistry()
	w.RegisterMetrics(o)
	m.RegisterMetrics(o)
	var sb strings.Builder
	if err := o.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"badabingd_watchdog_goroutines 42",
		"badabingd_watchdog_open_fds 7",
		"badabingd_watchdog_heap_bytes 1234",
		"badabingd_health_state 2",
		`badabingd_health_component{component="resources"} 2`,
		"badabingd_health_transitions_total 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, sb.String())
		}
	}

	// open_fds disappears (never renders a stale sample) when the
	// platform cannot count descriptors.
	w.SetSample(func() Usage { return Usage{Goroutines: 42, OpenFDs: -1, HeapBytes: 1234} })
	w.Check()
	sb.Reset()
	if err := o.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "badabingd_watchdog_open_fds") {
		t.Errorf("open_fds rendered without a count:\n%s", sb.String())
	}
}
