package obs

import (
	"io"
	"strconv"
	"testing"
)

// TestInstrumentOpsZeroAlloc pins the hot-path contract: updating a
// bound instrument never touches the heap. Pacing loops, the WAL
// append path and per-request HTTP accounting all ride on this.
func TestInstrumentOpsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", DefBuckets)
	vc := r.CounterVec("vc_total", "h", "shard").With("3")
	vg := r.GaugeVec("vg", "h", "shard").With("3")

	cases := []struct {
		name string
		op   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(7) }},
		{"Counter.AddFloat", func() { c.AddFloat(0.5) }},
		{"Counter.Set", func() { c.Set(42) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.SetInt", func() { g.SetInt(9) }},
		{"Gauge.Add", func() { g.Add(-2) }},
		{"Histogram.Observe", func() { h.Observe(0.017) }},
		{"BoundVecCounter.Inc", func() { vc.Inc() }},
		{"BoundVecGauge.Set", func() { vg.Set(3) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestRenderAllocsBounded: the scrape path reuses its buffer, so a
// steady render settles to a small per-scrape allocation count that
// does not scale with sample count (the per-family child snapshots are
// the only per-render slices).
func TestRenderAllocsBounded(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("many", "h", "i")
	for i := 0; i < 200; i++ {
		v.With(strconv.Itoa(i)).Set(float64(i))
	}
	r.Counter("c_total", "h").Inc()
	r.Histogram("h_seconds", "h", DefBuckets).Observe(0.1)

	// Warm the buffer pool.
	for i := 0; i < 4; i++ {
		r.Write(io.Discard)
	}
	allocs := testing.AllocsPerRun(100, func() { r.Write(io.Discard) })
	// 3 families -> one snapshot slice each, plus pool bookkeeping.
	if allocs > 12 {
		t.Errorf("render allocates %v per scrape, want <= 12", allocs)
	}
}
