package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// renderBufs recycles exposition buffers across scrapes so a steady
// scrape load settles into a handful of allocations per render.
var renderBufs = sync.Pool{New: func() any { b := make([]byte, 0, 16<<10); return &b }}

// Write renders the registry as Prometheus text exposition format
// 0.0.4: collectors run first (mirroring pull-style state into
// instruments), then every non-empty family is emitted in sorted name
// order with exactly one HELP/TYPE pair and its samples in sorted
// label order.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	collectors := r.collectors
	r.mu.Unlock()
	for _, c := range collectors {
		c()
	}

	r.mu.Lock()
	fams := make([]*family, len(r.sorted))
	copy(fams, r.sorted)
	r.mu.Unlock()

	bp := renderBufs.Get().(*[]byte)
	b := (*bp)[:0]
	for _, f := range fams {
		b = f.render(b)
	}
	_, err := w.Write(b)
	*bp = b
	renderBufs.Put(bp)
	return err
}

// render appends one family's exposition block to b (nothing when the
// family has no live children).
func (f *family) render(b []byte) []byte {
	f.mu.Lock()
	var rows []*sample
	var hrows []*histSample
	if f.kind == KindHistogram {
		hrows = make([]*histSample, 0, len(f.hists))
		for _, h := range f.hists {
			hrows = append(hrows, h)
		}
	} else {
		rows = make([]*sample, 0, len(f.children))
		for _, s := range f.children {
			rows = append(rows, s)
		}
	}
	f.mu.Unlock()
	if len(rows) == 0 && len(hrows) == 0 {
		return b
	}

	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, f.help)
	b = append(b, "\n# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.kind.String()...)
	b = append(b, '\n')

	if f.kind == KindHistogram {
		sort.Slice(hrows, func(i, j int) bool { return hrows[i].labels < hrows[j].labels })
		for _, h := range hrows {
			b = h.render(b, f.name)
		}
		return b
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })
	for _, s := range rows {
		b = append(b, f.name...)
		b = append(b, s.labels...)
		b = append(b, ' ')
		b = appendValue(b, s.value())
		b = append(b, '\n')
	}
	return b
}

// render appends one histogram child: cumulative buckets, +Inf, sum and
// count, with le spliced into the child's pre-rendered label set.
func (h *histSample) render(b []byte, name string) []byte {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = h.appendLabelsWithLe(b, i)
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name...)
	b = append(b, "_sum"...)
	b = append(b, h.labels...)
	b = append(b, ' ')
	b = appendValue(b, math.Float64frombits(h.sumBits.Load()))
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count"...)
	b = append(b, h.labels...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, cum, 10)
	b = append(b, '\n')
	return b
}

// appendLabelsWithLe renders the child's labels plus le="<bound i>"
// (index len(buckets) is +Inf).
func (h *histSample) appendLabelsWithLe(b []byte, i int) []byte {
	b = append(b, '{')
	if len(h.labels) > 2 {
		// Splice the existing `{...}` open: keep its body, add a comma.
		b = append(b, h.labels[1:len(h.labels)-1]...)
		b = append(b, ',')
	}
	b = append(b, `le="`...)
	if i >= len(h.buckets) {
		b = append(b, "+Inf"...)
	} else {
		b = strconv.AppendFloat(b, h.buckets[i], 'g', -1, 64)
	}
	b = append(b, `"}`...)
	return b
}

// renderLabels pre-renders a label set as `{k="v",...}` with the
// exposition format's escapes (backslash, double quote, newline).
func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	b := make([]byte, 0, 32)
	b = append(b, '{')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, k...)
		b = append(b, `="`...)
		b = appendEscapedLabel(b, values[i])
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b)
}

// appendEscapedHelp escapes backslash and newline (HELP text rules).
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendEscapedLabel escapes backslash, double quote and newline
// (label value rules).
func appendEscapedLabel(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '"':
			b = append(b, `\"`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendValue renders a sample value: integral magnitudes within the
// float64-exact range render as integers, everything else as shortest
// round-trip %g (NaN/Inf included, matching the exposition grammar).
func appendValue(b []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < (1<<53) && !math.IsInf(v, 0) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
