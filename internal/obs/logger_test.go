package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixedNow() time.Time {
	return time.Date(2026, 8, 8, 10, 30, 0, 123e6, time.UTC)
}

// TestLoggerText checks the text line shape: timestamp, level tag,
// message, bound fields then call fields, quoting only when needed.
func TestLoggerText(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LoggerConfig{Now: fixedNow})
	l.Info("listening", "addr", "127.0.0.1:8642", "workers", 8)
	got := sb.String()
	want := "2026-08-08T10:30:00.123Z INFO  listening addr=127.0.0.1:8642 workers=8\n"
	if got != want {
		t.Errorf("text line:\n got %q\nwant %q", got, want)
	}

	sb.Reset()
	l.Warn("drain", "took", 1500*time.Millisecond, "reason", "deadline exceeded", "clean", false)
	got = sb.String()
	if !strings.Contains(got, "WARN  drain took=1.5s") || !strings.Contains(got, `reason="deadline exceeded"`) || !strings.Contains(got, "clean=false") {
		t.Errorf("text fields wrong: %q", got)
	}
}

// TestLoggerJSON: every line parses as one JSON object with ts, level,
// msg and the fields.
func TestLoggerJSON(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LoggerConfig{Format: FormatJSON, Now: fixedNow})
	l.Error("store append failed", "err", "disk full", "records", int64(12), "f", 0.5)
	var obj map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &obj); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, sb.String())
	}
	if obj["level"] != "error" || obj["msg"] != "store append failed" || obj["err"] != "disk full" {
		t.Errorf("fields wrong: %v", obj)
	}
	if obj["records"] != float64(12) || obj["f"] != 0.5 {
		t.Errorf("numeric fields wrong: %v", obj)
	}
	if _, err := time.Parse(time.RFC3339Nano, obj["ts"].(string)); err != nil {
		t.Errorf("bad ts: %v", err)
	}
}

// TestLoggerLevelFilter: lines below the configured level are dropped.
func TestLoggerLevelFilter(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LoggerConfig{Level: LevelWarn, Now: fixedNow})
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	got := sb.String()
	if strings.Contains(got, "d\n") || strings.Contains(got, "i\n") {
		t.Errorf("low levels leaked: %q", got)
	}
	if !strings.Contains(got, "WARN  w") || !strings.Contains(got, "ERROR e") {
		t.Errorf("high levels missing: %q", got)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelInfo) {
		t.Error("Enabled disagrees with filtering")
	}
}

// TestLoggerWith: bound fields prepend every line, in both formats.
func TestLoggerWith(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LoggerConfig{Now: fixedNow}).With("component", "store")
	l.Info("opened", "segments", 3)
	if !strings.Contains(sb.String(), "opened component=store segments=3") {
		t.Errorf("bound text fields: %q", sb.String())
	}

	sb.Reset()
	j := NewLogger(&sb, LoggerConfig{Format: FormatJSON, Now: fixedNow}).With("component", "store")
	j.Info("opened")
	var obj map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &obj); err != nil {
		t.Fatal(err)
	}
	if obj["component"] != "store" {
		t.Errorf("bound JSON field missing: %v", obj)
	}
}

// TestNilLoggerSafe: a nil logger is a black hole, not a panic.
func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("x", "k", "v")
	l.Error("y")
	if l.With("a", 1) != nil {
		t.Error("nil With should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
}

// TestLoggerBadKey: odd or non-string keys are surfaced, not dropped.
func TestLoggerBadKey(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LoggerConfig{Now: fixedNow})
	l.Info("m", "dangling")
	if !strings.Contains(sb.String(), "!BADKEY=dangling") {
		t.Errorf("dangling value lost: %q", sb.String())
	}
}

// TestParseLevelFormat covers the flag parsers.
func TestParseLevelFormat(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
	for s, want := range map[string]Format{"text": FormatText, "": FormatText, "json": FormatJSON} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("ParseFormat accepted junk")
	}
}

// TestJSONControlEscapes: control characters in values stay valid JSON.
func TestJSONControlEscapes(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LoggerConfig{Format: FormatJSON, Now: fixedNow})
	l.Info("m", "v", "a\x01b\nc\"d\\e")
	var obj map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%q", err, sb.String())
	}
	if obj["v"] != "a\x01b\nc\"d\\e" {
		t.Errorf("round trip lost data: %q", obj["v"])
	}
}
