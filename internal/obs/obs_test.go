package obs

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestRenderWellFormed drives one of everything through the renderer
// and checks the exposition invariants: sorted families, one HELP/TYPE
// pair each, sorted samples, escaped labels.
func TestRenderWellFormed(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "Last name, first family when sorted? No — sorted ascending.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("aa_gauge", "First when sorted.")
	g.Set(2.5)
	v := r.CounterVec("mid_total", "Labeled counter.", "path", "kind")
	v.With("b", "x").Inc()
	v.With("a", "y").Add(2)
	v.With(`quote"back\slash`, "nl\nline").Inc()
	h := r.Histogram("lat_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	text := render(t, r)

	// Families appear in sorted order.
	wantOrder := []string{"aa_gauge", "lat_seconds", "mid_total", "zz_total"}
	last := -1
	for _, name := range wantOrder {
		i := strings.Index(text, "# HELP "+name+" ")
		if i < 0 {
			t.Fatalf("family %s missing:\n%s", name, text)
		}
		if i < last {
			t.Errorf("family %s out of order", name)
		}
		last = i
	}

	// One HELP and one TYPE per family.
	for _, name := range wantOrder {
		if n := strings.Count(text, "# HELP "+name+" "); n != 1 {
			t.Errorf("%s: %d HELP lines", name, n)
		}
		if n := strings.Count(text, "# TYPE "+name+" "); n != 1 {
			t.Errorf("%s: %d TYPE lines", name, n)
		}
	}

	if !strings.Contains(text, "zz_total 5\n") {
		t.Errorf("counter value wrong:\n%s", text)
	}
	if !strings.Contains(text, "aa_gauge 2.5\n") {
		t.Errorf("gauge value wrong:\n%s", text)
	}
	// Labeled samples sorted by label string; escapes applied.
	ia := strings.Index(text, `mid_total{path="a",kind="y"} 2`)
	ib := strings.Index(text, `mid_total{path="b",kind="x"} 1`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("labeled samples missing or unsorted:\n%s", text)
	}
	if !strings.Contains(text, `path="quote\"back\\slash"`) || !strings.Contains(text, `kind="nl\nline"`) {
		t.Errorf("label escaping wrong:\n%s", text)
	}
	// Histogram: cumulative buckets, +Inf == count.
	for _, line := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		`lat_seconds_sum 5.55`,
		`lat_seconds_count 3`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("missing %q:\n%s", line, text)
		}
	}
}

// TestEmptyFamiliesSkipped: a family with no live children emits
// nothing, and Reset empties a dynamic family.
func TestEmptyFamiliesSkipped(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("dyn", "Dynamic per-thing gauge.", "thing")
	if text := render(t, r); text != "" {
		t.Fatalf("empty registry rendered %q", text)
	}
	v.With("a").Set(1)
	if text := render(t, r); !strings.Contains(text, `dyn{thing="a"} 1`) {
		t.Fatalf("bound child missing:\n%s", text)
	}
	v.Reset()
	if text := render(t, r); text != "" {
		t.Fatalf("reset family still rendered %q", text)
	}
}

// TestCollectorRunsPerScrape: OnScrape collectors refresh pull-style
// instruments before each render.
func TestCollectorRunsPerScrape(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pull_gauge", "Mirrored.")
	n := 0.0
	r.OnScrape(func() { n++; g.Set(n) })
	if text := render(t, r); !strings.Contains(text, "pull_gauge 1\n") {
		t.Fatalf("first scrape:\n%s", text)
	}
	if text := render(t, r); !strings.Contains(text, "pull_gauge 2\n") {
		t.Fatalf("second scrape:\n%s", text)
	}
}

// TestCounterFloatPart: integer and float parts sum; integral totals
// render as integers, fractional as shortest float.
func TestCounterFloatPart(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	c.Add(3)
	c.AddFloat(0.25)
	if got := c.Value(); got != 3.25 {
		t.Fatalf("value = %v", got)
	}
	if text := render(t, r); !strings.Contains(text, "c_total 3.25\n") {
		t.Fatalf("render: %s", text)
	}
	c.AddFloat(0.75)
	if text := render(t, r); !strings.Contains(text, "c_total 4\n") {
		t.Fatalf("render: %s", text)
	}
}

// TestCounterSetMirror: Set supports scrape-time mirroring of external
// monotone totals, including float totals.
func TestCounterSetMirror(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("m_total", "h")
	c.Set(12345)
	if text := render(t, r); !strings.Contains(text, "m_total 12345\n") {
		t.Fatalf("render: %s", text)
	}
	c.Set(1.5)
	if text := render(t, r); !strings.Contains(text, "m_total 1.5\n") {
		t.Fatalf("render: %s", text)
	}
}

// TestGaugeSetInt covers the negative and positive integer paths.
func TestGaugeSetInt(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "h")
	g.SetInt(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("value = %v", got)
	}
	g.SetInt(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("value = %v", got)
	}
}

// TestReregistrationIdempotent: identical re-registration returns the
// same child; conflicting shape panics.
func TestReregistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registration returned a different child")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestValueFormatting: big integral counters stay integer-formatted
// (no %g scientific notation), specials render per the grammar.
func TestValueFormatting(t *testing.T) {
	if got := string(appendValue(nil, 1200000)); got != "1200000" {
		t.Errorf("1200000 -> %q", got)
	}
	if got := string(appendValue(nil, 0.5)); got != "0.5" {
		t.Errorf("0.5 -> %q", got)
	}
	if got := string(appendValue(nil, math.Inf(1))); got != "+Inf" {
		t.Errorf("+Inf -> %q", got)
	}
	if got := string(appendValue(nil, math.NaN())); got != "NaN" {
		t.Errorf("NaN -> %q", got)
	}
}

// TestHistogramVecLabels: le splices behind the child labels.
func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("hv_seconds", "h", []float64{1}, "route")
	hv.With("create").Observe(0.5)
	text := render(t, r)
	for _, line := range []string{
		`hv_seconds_bucket{route="create",le="1"} 1`,
		`hv_seconds_bucket{route="create",le="+Inf"} 1`,
		`hv_seconds_sum{route="create"} 0.5`,
		`hv_seconds_count{route="create"} 1`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("missing %q:\n%s", line, text)
		}
	}
}

// TestExpositionGrammar runs every rendered line through a minimal
// grammar check (the same shape the fleet acceptance parser enforces).
func TestExpositionGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h").Inc()
	r.GaugeVec("b", "h", "k").With("v").Set(1)
	r.Histogram("c_seconds", "h", nil).Observe(0.2)
	sc := bufio.NewScanner(strings.NewReader(render(t, r)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Errorf("malformed comment %q", line)
			}
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed sample %q", line)
		}
	}
}
