package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Level is a log line's severity.
type Level int8

const (
	// LevelDebug is development detail, off by default.
	LevelDebug Level = iota
	// LevelInfo is normal operational events (startup, transitions).
	LevelInfo
	// LevelWarn is degraded-but-serving conditions.
	LevelWarn
	// LevelError is failures that lost work or shed load.
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "unknown"
	}
}

// ParseLevel maps a -log-level flag value to its Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Format selects the logger's output encoding.
type Format int8

const (
	// FormatText is one human-oriented line: ts LEVEL msg k=v ...
	FormatText Format = iota
	// FormatJSON is one JSON object per line.
	FormatJSON
)

// ParseFormat maps a -log-format flag value to its Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("obs: unknown log format %q (want text or json)", s)
}

// LoggerConfig parameterizes NewLogger. The zero value is text format
// at info level stamped with time.Now.
type LoggerConfig struct {
	Level  Level
	Format Format
	// Now injects a clock for tests (nil = time.Now).
	Now func() time.Time
}

// Logger is a small leveled structured logger: a message plus
// alternating key/value fields, in text or JSON, one line per call
// written atomically. A nil *Logger discards everything, so components
// can take one without nil checks. Loggers derived with With share the
// parent's writer and mutex.
type Logger struct {
	out   *logOutput
	level Level
	json  bool
	now   func() time.Time
	bound []byte // pre-encoded With fields, in this logger's format
}

type logOutput struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger builds a logger writing to w.
func NewLogger(w io.Writer, cfg LoggerConfig) *Logger {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Logger{
		out:   &logOutput{w: w},
		level: cfg.Level,
		json:  cfg.Format == FormatJSON,
		now:   now,
	}
}

// NewLoggerFlags builds a logger from -log-level/-log-format flag
// values, so every command parses them identically.
func NewLoggerFlags(w io.Writer, level, format string) (*Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	f, err := ParseFormat(format)
	if err != nil {
		return nil, err
	}
	return NewLogger(w, LoggerConfig{Level: lvl, Format: f}), nil
}

// With returns a logger that prepends the given key/value fields to
// every line (e.g. component identity).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.bound = append(append([]byte(nil), l.bound...), l.encodeFields(nil, kv)...)
	return &child
}

// Enabled reports whether lines at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.level }

// Debug emits a debug line.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info line.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn emits a warning line.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error emits an error line.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

var logBufs = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	bp := logBufs.Get().(*[]byte)
	b := (*bp)[:0]
	ts := l.now().UTC()
	if l.json {
		b = append(b, `{"ts":"`...)
		b = ts.AppendFormat(b, time.RFC3339Nano)
		b = append(b, `","level":"`...)
		b = append(b, lv.String()...)
		b = append(b, `","msg":`...)
		b = appendJSONString(b, msg)
		b = append(b, l.bound...)
		b = l.encodeFields(b, kv)
		b = append(b, "}\n"...)
	} else {
		b = ts.AppendFormat(b, "2006-01-02T15:04:05.000Z")
		b = append(b, ' ')
		b = appendLevelText(b, lv)
		b = append(b, ' ')
		b = append(b, msg...)
		b = append(b, l.bound...)
		b = l.encodeFields(b, kv)
		b = append(b, '\n')
	}
	l.out.mu.Lock()
	l.out.w.Write(b)
	l.out.mu.Unlock()
	*bp = b
	logBufs.Put(bp)
}

func appendLevelText(b []byte, lv Level) []byte {
	switch lv {
	case LevelDebug:
		return append(b, "DEBUG"...)
	case LevelInfo:
		return append(b, "INFO "...)
	case LevelWarn:
		return append(b, "WARN "...)
	default:
		return append(b, "ERROR"...)
	}
}

// encodeFields appends alternating key/value pairs in the logger's
// format. A trailing odd value is reported under "!BADKEY" rather than
// dropped.
func (l *Logger) encodeFields(b []byte, kv []any) []byte {
	for i := 0; i < len(kv); i += 2 {
		key, ok := "", false
		if i+1 < len(kv) {
			key, ok = kv[i].(string)
		}
		var val any
		if !ok {
			key, val = "!BADKEY", kv[i]
		} else {
			val = kv[i+1]
		}
		if l.json {
			b = append(b, ',')
			b = appendJSONString(b, key)
			b = append(b, ':')
			b = appendJSONValue(b, val)
		} else {
			b = append(b, ' ')
			b = append(b, key...)
			b = append(b, '=')
			b = appendTextValue(b, val)
		}
	}
	return b
}

// stringify renders one field value.
func stringify(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprint(v)
	}
}

func appendTextValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, x)
	case time.Duration:
		return append(b, x.String()...)
	}
	s := stringify(v)
	if needsQuoting(s) {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}

func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		// JSON has no NaN/Inf literals; quote them.
		if x != x || x > 1.7e308 || x < -1.7e308 {
			return appendJSONString(b, strconv.FormatFloat(x, 'g', -1, 64))
		}
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, x)
	}
	return appendJSONString(b, stringify(v))
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return true
		}
	}
	return false
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (quote, backslash, controls).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b = append(b, `\"`...)
		case c == '\\':
			b = append(b, `\\`...)
		case c == '\n':
			b = append(b, `\n`...)
		case c == '\t':
			b = append(b, `\t`...)
		case c == '\r':
			b = append(b, `\r`...)
		case c < 0x20:
			b = append(b, `\u00`...)
			const hex = "0123456789abcdef"
			b = append(b, hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
