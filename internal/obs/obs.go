// Package obs is the daemon's observability core: a dependency-free
// typed metric registry with one Prometheus text-exposition renderer,
// and a small leveled structured logger.
//
// Every subsystem (fleet registry, durable store, circuit breaker,
// admission layer, health monitor, resource watchdog, reflector)
// registers its instruments into one Registry at construction; the
// /metrics endpoint renders that registry and nothing else. There is
// exactly one place that knows the exposition format — this package —
// so families are always well-formed: one HELP/TYPE pair each, sorted
// family and sample order, escaped label values.
//
// Instruments come in two flavors of use:
//
//   - Push: hot paths hold a pre-bound Counter/Gauge/Histogram and call
//     Inc/Add/Set/Observe directly. These operations are atomic and
//     allocation-free (pinned by AllocsPerRun tests), so they are safe
//     in pacing loops and per-request paths.
//   - Pull: subsystems that already keep authoritative internal state
//     (store stats, session snapshots) register an OnScrape collector
//     that mirrors that state into instruments right before each
//     render. Collectors run on the scrape path only.
//
// Label sets are fixed at registration: a vec is created with its label
// keys and children are bound per label-value tuple. Binding allocates
// once; the bound child is then update-only. Hot paths bind at setup
// (e.g. one counter per reflector shard), never per operation.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is an instrument family's Prometheus type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing total.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds instrument families and renders them as one sorted
// Prometheus text exposition. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	sorted     []*family // kept name-sorted; rebuilt on registration
	collectors []func()
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric family: fixed name, help, kind and label keys,
// plus its live children keyed by label-value tuple.
type family struct {
	name    string
	help    string
	kind    Kind
	keys    []string
	buckets []float64 // histogram upper bounds (+Inf implicit)

	mu       sync.Mutex
	children map[string]*sample
	hists    map[string]*histSample
}

// register creates or revalidates a family. Re-registering with an
// identical shape returns the existing family (idempotent); any
// mismatch is a programming error and panics.
func (r *Registry) register(name, help string, kind Kind, keys []string, buckets []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.help != help || !equalStrings(f.keys, keys) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: conflicting registration of %s", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		keys:     append([]string(nil), keys...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*sample),
		hists:    make(map[string]*histSample),
	}
	r.families[name] = f
	r.sorted = append(r.sorted, f)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].name < r.sorted[j].name })
	return f
}

// OnScrape registers a collector run at the start of every render, in
// registration order. Collectors mirror pull-style subsystem state
// (snapshots, stats structs) into instruments; they must not register
// new families.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, f)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sample is one counter or gauge child. The value is the sum of an
// integer part (fast atomic increments) and a float part (CAS-added),
// the classic split that keeps Inc/Add allocation-free without losing
// float totals.
type sample struct {
	labels string // pre-rendered `{k="v",...}`, "" when unlabeled
	ints   atomic.Uint64
	bits   atomic.Uint64 // float64 bits
}

func (s *sample) value() float64 {
	return float64(s.ints.Load()) + math.Float64frombits(s.bits.Load())
}

func (s *sample) addFloat(v float64) {
	for {
		old := s.bits.Load()
		if s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// set overwrites the child's value (collector mirroring). Integral
// non-negative values land in the integer part so they render as
// integers.
func (s *sample) set(v float64) {
	if v >= 0 && v == math.Trunc(v) && v < (1<<53) {
		s.bits.Store(0)
		s.ints.Store(uint64(v))
		return
	}
	s.ints.Store(0)
	s.bits.Store(math.Float64bits(v))
}

// Counter is a monotone total. The zero Counter is invalid; obtain one
// from a Registry.
type Counter struct{ s *sample }

// Inc adds 1. Allocation-free.
func (c Counter) Inc() { c.s.ints.Add(1) }

// Add adds n. Allocation-free.
func (c Counter) Add(n uint64) { c.s.ints.Add(n) }

// AddFloat adds a fractional amount (e.g. seconds). Allocation-free.
func (c Counter) AddFloat(v float64) { c.s.addFloat(v) }

// Set mirrors an externally maintained monotone total into the counter
// (scrape-time collector use). The caller owns monotonicity.
func (c Counter) Set(v float64) { c.s.set(v) }

// Value returns the current total.
func (c Counter) Value() float64 { return c.s.value() }

// Gauge is a value that can go up and down. The zero Gauge is invalid;
// obtain one from a Registry.
type Gauge struct{ s *sample }

// Set overwrites the gauge. Allocation-free.
func (g Gauge) Set(v float64) { g.s.set(v) }

// SetInt overwrites the gauge with an integer value. Allocation-free.
func (g Gauge) SetInt(v int64) {
	if v >= 0 {
		g.s.bits.Store(0)
		g.s.ints.Store(uint64(v))
		return
	}
	g.s.ints.Store(0)
	g.s.bits.Store(math.Float64bits(float64(v)))
}

// Add adjusts the gauge by v (may be negative). Allocation-free.
func (g Gauge) Add(v float64) { g.s.addFloat(v) }

// Value returns the current value.
func (g Gauge) Value() float64 { return g.s.value() }

// histSample is one histogram child: cumulative-at-render bucket
// counts, an observation count and a float sum.
type histSample struct {
	labels  string
	buckets []float64
	counts  []atomic.Uint64 // len(buckets)+1; last is +Inf
	sumBits atomic.Uint64
}

// Histogram is a bucketed distribution. The zero Histogram is invalid;
// obtain one from a Registry.
type Histogram struct{ h *histSample }

// Observe records one value. Allocation-free.
func (h Histogram) Observe(v float64) {
	i := 0
	for i < len(h.h.buckets) && v > h.h.buckets[i] {
		i++
	}
	h.h.counts[i].Add(1)
	for {
		old := h.h.sumBits.Load()
		if h.h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h Histogram) Count() uint64 {
	var n uint64
	for i := range h.h.counts {
		n += h.h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h Histogram) Sum() float64 { return math.Float64frombits(h.h.sumBits.Load()) }

// DefBuckets are general-purpose latency buckets in seconds (the
// client_golang defaults).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// child returns (creating if needed) the sample bound to the given
// label values. Binding allocates; bind once at setup, not per update.
func (f *family) child(values []string) *sample {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.children[key]; ok {
		return s
	}
	s := &sample{labels: renderLabels(f.keys, values)}
	f.children[key] = s
	return s
}

func (f *family) histChild(values []string) *histSample {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.hists[key]; ok {
		return h
	}
	h := &histSample{
		labels:  renderLabels(f.keys, values),
		buckets: f.buckets,
		counts:  make([]atomic.Uint64, len(f.buckets)+1),
	}
	f.hists[key] = h
	return h
}

// reset drops every child (collectors rebuilding a dynamic family —
// e.g. per-session gauges — call this before repopulating).
func (f *family) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.children)
	clear(f.hists)
}

// Counter registers (or returns) the unlabeled counter family name.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return Counter{f.child(nil)}
}

// Gauge registers (or returns) the unlabeled gauge family name.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return Gauge{f.child(nil)}
}

// Histogram registers (or returns) the unlabeled histogram family name
// with the given upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, KindHistogram, nil, buckets)
	return Histogram{f.histChild(nil)}
}

// CounterVec is a counter family with fixed label keys.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) CounterVec {
	return CounterVec{r.register(name, help, KindCounter, keys, nil)}
}

// With binds (creating if needed) the child for the label values.
func (v CounterVec) With(values ...string) Counter { return Counter{v.f.child(values)} }

// Reset drops every child; the family renders empty until re-bound.
func (v CounterVec) Reset() { v.f.reset() }

// GaugeVec is a gauge family with fixed label keys.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family. Zero keys is
// allowed: the family then has one optional unlabeled sample whose
// presence a collector controls via Reset/With.
func (r *Registry) GaugeVec(name, help string, keys ...string) GaugeVec {
	return GaugeVec{r.register(name, help, KindGauge, keys, nil)}
}

// With binds (creating if needed) the child for the label values.
func (v GaugeVec) With(values ...string) Gauge { return Gauge{v.f.child(values)} }

// Reset drops every child; the family renders empty until re-bound.
func (v GaugeVec) Reset() { v.f.reset() }

// HistogramVec is a histogram family with fixed label keys.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family with
// the given upper bounds (nil = DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, keys ...string) HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return HistogramVec{r.register(name, help, KindHistogram, keys, buckets)}
}

// With binds (creating if needed) the child for the label values.
func (v HistogramVec) With(values ...string) Histogram { return Histogram{v.f.histChild(values)} }

// Reset drops every child; the family renders empty until re-bound.
func (v HistogramVec) Reset() { v.f.reset() }

// Families returns the sorted family names currently registered
// (tests and tooling).
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.sorted))
	for i, f := range r.sorted {
		names[i] = f.name
	}
	return names
}
