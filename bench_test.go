// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus one per ablation in DESIGN.md. Each benchmark runs the
// corresponding lab experiment end to end on the simulated testbed and
// reports estimate-quality metrics alongside the usual time/allocs.
//
// Benchmarks use shortened horizons so `go test -bench=.` finishes in
// minutes; cmd/labsim runs the same experiments at the paper's full
// 900-second scale. The horizon can be overridden with
// BADABING_BENCH_HORIZON (a Go duration string).
package badabing_test

import (
	"os"
	"testing"
	"time"

	"badabing/internal/lab"
)

// benchHorizon is the per-run measurement length for benchmarks. An
// unparsable override fails the benchmark rather than silently running at
// the default horizon, which would report numbers for the wrong scale.
func benchHorizon(b *testing.B, def time.Duration) time.Duration {
	if s := os.Getenv("BADABING_BENCH_HORIZON"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			b.Fatalf("invalid BADABING_BENCH_HORIZON %q: %v (want a Go duration like 90s or 2m)", s, err)
		}
		return d
	}
	return def
}

func cfg(b *testing.B, def time.Duration) lab.RunConfig {
	return lab.RunConfig{Horizon: benchHorizon(b, def), Seed: 1}
}

// reportRow emits estimate-vs-truth metrics for a tool row.
func reportLoss(b *testing.B, name string, est, truth float64) {
	b.Helper()
	if truth > 0 {
		rel := est/truth - 1
		if rel < 0 {
			rel = -rel
		}
		b.ReportMetric(rel, name+"-relerr")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Table1(cfg(b, 120 * time.Second))
		truth := res.Rows[0]
		reportLoss(b, "zing10hz-freq", res.Rows[1].Frequency, truth.Frequency)
		reportLoss(b, "zing20hz-freq", res.Rows[2].Frequency, truth.Frequency)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Table2(cfg(b, 180 * time.Second))
		truth := res.Rows[0]
		reportLoss(b, "zing10hz-freq", res.Rows[1].Frequency, truth.Frequency)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Table3(cfg(b, 120 * time.Second))
		truth := res.Rows[0]
		reportLoss(b, "zing10hz-freq", res.Rows[1].Frequency, truth.Frequency)
	}
}

func benchSweep(b *testing.B, run func(lab.RunConfig) lab.SweepTable, horizon time.Duration) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := run(cfg(b, horizon))
		var freqErr, durErr float64
		n := 0
		for _, r := range res.Rows {
			if r.P < 0.3 || r.TrueF == 0 || r.TrueD == 0 {
				continue
			}
			fe := r.EstF/r.TrueF - 1
			if fe < 0 {
				fe = -fe
			}
			de := r.EstD/r.TrueD - 1
			if de < 0 {
				de = -de
			}
			freqErr += fe
			durErr += de
			n++
		}
		if n > 0 {
			b.ReportMetric(freqErr/float64(n), "freq-relerr")
			b.ReportMetric(durErr/float64(n), "dur-relerr")
		}
	}
}

func BenchmarkTable4(b *testing.B) { benchSweep(b, lab.Table4, 180*time.Second) }
func BenchmarkTable5(b *testing.B) { benchSweep(b, lab.Table5, 180*time.Second) }
func BenchmarkTable6(b *testing.B) { benchSweep(b, lab.Table6, 120*time.Second) }

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Table7(cfg(b, 90 * time.Second))
		r := res.Rows[len(res.Rows)-1]
		reportLoss(b, "freq", r.EstF, r.TrueF)
		reportLoss(b, "dur", r.EstD, r.TrueD)
	}
}

func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Table8(cfg(b, 150 * time.Second))
		// Row order: CBR badabing, CBR zing, web badabing, web zing.
		reportLoss(b, "badabing-dur", res.Rows[0].EstD, res.Rows[0].TrueD)
		reportLoss(b, "zing-dur", res.Rows[1].EstD, res.Rows[1].TrueD)
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Figure4(cfg(b, 20 * time.Second))
		b.ReportMetric(float64(len(res.Episodes)), "episodes")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Figure5(cfg(b, 40 * time.Second))
		b.ReportMetric(float64(len(res.Episodes)), "episodes")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Figure6(cfg(b, 60 * time.Second))
		b.ReportMetric(float64(len(res.Episodes)), "episodes")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Figure7(cfg(b, 40 * time.Second))
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(first.PNoCBR, "cbr-miss-1pkt")
		b.ReportMetric(last.PNoCBR, "cbr-miss-10pkt")
		b.ReportMetric(first.PNoTCP, "tcp-miss-1pkt")
		b.ReportMetric(last.PNoTCP, "tcp-miss-10pkt")
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Figure8(cfg(b, 15 * time.Second))
		v := res.Variants[2] // 10-packet trains
		if v.ProbePkts > 0 {
			b.ReportMetric(float64(v.ProbeLost)/float64(v.ProbePkts), "10pkt-probe-lossrate")
		}
	}
}

func BenchmarkFigure9a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Figure9a(cfg(b, 120 * time.Second))
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.EstF[0], "freq-alpha005")
		b.ReportMetric(last.EstF[2], "freq-alpha020")
	}
}

func BenchmarkFigure9b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.Figure9b(cfg(b, 120 * time.Second))
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.EstF[0], "freq-tau20")
		b.ReportMetric(last.EstF[2], "freq-tau80")
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.AblationPlacement(cfg(b, 150 * time.Second))
		b.ReportMetric(lab.MeanFreqError(res.Rows[:1]), "bernoulli-freq-relerr")
		b.ReportMetric(lab.MeanFreqError(res.Rows[1:]), "poisson-freq-relerr")
	}
}

func BenchmarkAblationMarking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.AblationMarking(cfg(b, 150 * time.Second))
		b.ReportMetric(lab.MeanFreqError(res.Rows[:1]), "delay-freq-relerr")
		b.ReportMetric(lab.MeanFreqError(res.Rows[1:]), "lossonly-freq-relerr")
	}
}

func BenchmarkAblationEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.AblationEstimator(cfg(b, 150 * time.Second))
		for _, r := range res.Rows {
			if r.TrueD > 0 {
				rel := r.EstD/r.TrueD - 1
				if rel < 0 {
					rel = -rel
				}
				name := "basic-dur-relerr"
				if r.Variant[0] == 'i' {
					name = "improved-dur-relerr"
				}
				b.ReportMetric(rel, name)
			}
		}
	}
}

func BenchmarkAblationSlot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.AblationSlot(cfg(b, 120 * time.Second))
		b.ReportMetric(res.Rows[0].EstD, "dur-1ms-slot")
		b.ReportMetric(res.Rows[2].EstD, "dur-20ms-slot")
	}
}

func BenchmarkAblationProbeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.AblationProbeSize(cfg(b, 150 * time.Second))
		b.ReportMetric(res.Rows[0].EstF, "freq-1pkt")
		b.ReportMetric(res.Rows[1].EstF, "freq-3pkt")
	}
}

func BenchmarkAblationExtendedPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.AblationExtendedPairs(cfg(b, 150 * time.Second))
		for _, r := range res.Rows {
			if r.TrueD > 0 {
				rel := r.EstD/r.TrueD - 1
				if rel < 0 {
					rel = -rel
				}
				name := "pairsoff-dur-relerr"
				if r.Variant != "pairs off" {
					name = "pairson-dur-relerr"
				}
				b.ReportMetric(rel, name)
			}
		}
	}
}

func BenchmarkMultiHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.MultiHop(3, cfg(b, 120*time.Second))
		if res.TrueF > 0 {
			rel := res.EstF/res.TrueF - 1
			if rel < 0 {
				rel = -rel
			}
			b.ReportMetric(rel, "union-freq-relerr")
		}
	}
}

func BenchmarkSeedStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.SeedStudy(lab.CBRUniform, 0.5, []int64{1, 2, 3}, cfg(b, 120*time.Second))
		b.ReportMetric(res.RelDurErr.Mean(), "dur-relerr-mean")
		b.ReportMetric(res.RelDurErr.StdDev(), "dur-relerr-sd")
	}
}

func BenchmarkREDStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := lab.RED(cfg(b, 90 * time.Second))
		for _, r := range res.Rows {
			if r.TrueF > 0 {
				rel := r.EstF/r.TrueF - 1
				if rel < 0 {
					rel = -rel
				}
				name := "droptail-freq-relerr"
				if r.Queue == "RED" {
					name = "red-freq-relerr"
				}
				b.ReportMetric(rel, name)
			}
		}
	}
}
